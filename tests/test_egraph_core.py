"""Unit tests for union-find and the e-graph data structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.egraph import EGraph, UnionFind
from repro.ir import parse_expr


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        assert a != b
        assert not uf.same(a, b)

    def test_union_and_find(self):
        uf = UnionFind()
        a, b, c = (uf.make_set() for _ in range(3))
        uf.union(a, b)
        assert uf.same(a, b)
        assert not uf.same(a, c)
        uf.union(b, c)
        assert uf.same(a, c)

    def test_smaller_id_wins(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        root = uf.union(b, a)
        assert root == a

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    def test_transitivity(self, pairs):
        uf = UnionFind()
        for _ in range(20):
            uf.make_set()
        for a, b in pairs:
            uf.union(a, b)
        # find is idempotent and respects union closure
        for a, b in pairs:
            assert uf.same(a, b)
        for i in range(20):
            assert uf.find(uf.find(i)) == uf.find(i)


class TestEGraphBasics:
    def test_add_expr_deduplicates(self):
        g = EGraph()
        a = g.add_expr(parse_expr("(+ x y)"))
        b = g.add_expr(parse_expr("(+ x y)"))
        assert g.same(a, b)
        assert g.num_classes == 3  # x, y, (+ x y)

    def test_distinct_terms_distinct_classes(self):
        g = EGraph()
        a = g.add_expr(parse_expr("(+ x y)"))
        b = g.add_expr(parse_expr("(* x y)"))
        assert not g.same(a, b)

    def test_represents(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x x)"))
        assert g.represents(root, parse_expr("(+ x x)"))
        assert not g.represents(root, parse_expr("(* 2 x)"))

    def test_lookup_expr_without_insert(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ x y)"))
        n = g.num_nodes
        assert g.lookup_expr(parse_expr("(* x y)")) is None
        assert g.num_nodes == n


class TestUnionAndCongruence:
    def test_union_merges_classes(self):
        g = EGraph()
        a = g.add_expr(parse_expr("a"))
        b = g.add_expr(parse_expr("b"))
        g.union(a, b)
        g.rebuild()
        assert g.same(a, b)

    def test_congruence_closure(self):
        # If a = b then f(a) = f(b) after rebuilding.
        g = EGraph()
        fa = g.add_expr(parse_expr("(sqrt a)"))
        fb = g.add_expr(parse_expr("(sqrt b)"))
        a = g.lookup_expr(parse_expr("a"))
        b = g.lookup_expr(parse_expr("b"))
        assert not g.same(fa, fb)
        g.union(a, b)
        g.rebuild()
        assert g.same(fa, fb)

    def test_congruence_cascades(self):
        # a = b implies g(f(a)) = g(f(b)) through two levels.
        g = EGraph()
        gfa = g.add_expr(parse_expr("(exp (sqrt a))"))
        gfb = g.add_expr(parse_expr("(exp (sqrt b))"))
        g.union(g.lookup_expr(parse_expr("a")), g.lookup_expr(parse_expr("b")))
        g.rebuild()
        assert g.same(gfa, gfb)

    def test_hashcons_stays_canonical(self):
        g = EGraph()
        plus = g.add_expr(parse_expr("(+ a b)"))
        a = g.lookup_expr(parse_expr("a"))
        b = g.lookup_expr(parse_expr("b"))
        g.union(a, b)
        g.rebuild()
        # (+ a b) and (+ b a) are distinct nodes but (+ a a) == (+ a b) now.
        assert g.represents(plus, parse_expr("(+ a a)"))
        assert g.represents(plus, parse_expr("(+ b b)"))

    def test_self_union_is_noop(self):
        g = EGraph()
        a = g.add_expr(parse_expr("a"))
        version = g.version
        g.union(a, a)
        assert g.version == version

    def test_cycle_represents_infinite_terms(self):
        # Merge x with (+ x 0): the class now represents (+ (+ x 0) 0) etc.
        g = EGraph()
        x = g.add_expr(parse_expr("x"))
        plus = g.add_expr(parse_expr("(+ x 0)"))
        g.union(x, plus)
        g.rebuild()
        assert g.represents(x, parse_expr("(+ (+ x 0) 0)"))


class TestNodeIteration:
    def test_op_nodes(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ x (+ y z))"))
        plus_nodes = list(g.op_nodes("+"))
        assert len(plus_nodes) == 2
