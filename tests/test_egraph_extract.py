"""Tests for greedy, typed, and multi extraction."""

import pytest

from repro.cost import TargetCostModel
from repro.egraph import (
    EGraph,
    Extractor,
    TypedExtractor,
    ast_size_cost,
    extract_best,
    extract_variants,
    run_rules,
    rw,
)
from repro.ir import F32, F64, parse_expr


class TestGreedyExtraction:
    def test_picks_smaller_form(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ (* x 1) 0)"))
        run_rules(g, [rw("mul1", "(* a 1)", "a"), rw("add0", "(+ a 0)", "a")])
        assert extract_best(g, root) == parse_expr("x")

    def test_cost_of(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x y)"))
        ex = Extractor(g)
        assert ex.cost_of(root) == 3.0

    def test_custom_cost_function(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x x)"))
        run_rules(g, [rw("double", "(+ a a)", "(* 2 a)")])

        def expensive_add(head, child_costs):
            base = 10.0 if head == "+" else 1.0
            return base + sum(child_costs)

        assert Extractor(g, expensive_add).extract(root) == parse_expr("(* 2 x)")

    def test_handles_cycles(self):
        g = EGraph()
        x = g.add_expr(parse_expr("x"))
        plus = g.add_expr(parse_expr("(+ x 0)"))
        g.union(x, plus)
        g.rebuild()
        # The class represents infinitely many terms; extraction terminates.
        assert extract_best(g, x) == parse_expr("x")


class _MiniModel:
    """A hand-rolled TypedCostModel for isolation tests."""

    SIGS = {
        "add.f64": ((F64, F64), F64, 1.0),
        "add.f32": ((F32, F32), F32, 1.0),
        "rcp.f32": ((F32,), F32, 2.0),
        "div.f32": ((F32, F32), F32, 8.0),
        "cast.f32": ((F64,), F32, 1.0),
        "cast.f64": ((F32,), F64, 1.0),
    }

    def operator_signature(self, op):
        entry = self.SIGS.get(op)
        return (entry[0], entry[1]) if entry else None

    def operator_cost(self, op):
        return self.SIGS[op][2]

    def literal_types(self):
        return (F32, F64)

    def literal_cost(self, ty):
        return 0.5

    def variable_cost(self, ty):
        return 0.5


class TestTypedExtraction:
    def test_skips_real_nodes(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x y)"))  # real operator only
        ex = TypedExtractor(g, _MiniModel(), {"x": F64, "y": F64})
        assert ex.cost_of(root, F64) is None

    def test_extracts_float_node(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(add.f64 x y)", known_ops={"add.f64"}))
        ex = TypedExtractor(g, _MiniModel(), {"x": F64, "y": F64})
        assert ex.cost_of(root, F64) == 2.0
        assert ex.extract(root, F64) == parse_expr("(add.f64 x y)", known_ops={"add.f64"})

    def test_type_mismatch_not_extractable(self):
        # add.f32 over f64 variables has no valid typing without casts.
        g = EGraph()
        root = g.add_expr(parse_expr("(add.f32 x y)", known_ops={"add.f32"}))
        ex = TypedExtractor(g, _MiniModel(), {"x": F64, "y": F64})
        assert ex.cost_of(root, F32) is None

    def test_casts_enable_cross_format(self):
        ops = {"add.f32", "cast.f32"}
        g = EGraph()
        root = g.add_expr(
            parse_expr("(add.f32 (cast.f32 x) (cast.f32 y))", known_ops=ops)
        )
        ex = TypedExtractor(g, _MiniModel(), {"x": F64, "y": F64})
        assert ex.cost_of(root, F32) == pytest.approx(1 + 2 * (1 + 0.5))

    def test_tracks_per_type_best(self):
        # One e-class holding both an f64 and an f32 implementation.
        ops = {"add.f64", "add.f32"}
        g = EGraph()
        a = g.add_expr(parse_expr("(add.f64 x y)", known_ops=ops))
        b = g.add_expr(parse_expr("(add.f32 u v)", known_ops=ops))
        g.union(a, b)
        g.rebuild()
        ex = TypedExtractor(
            g, _MiniModel(), {"x": F64, "y": F64, "u": F32, "v": F32}
        )
        assert ex.cost_of(a, F64) is not None
        assert ex.cost_of(a, F32) is not None
        assert set(ex.available_types(a)) == {F32, F64}

    def test_literals_available_at_all_types(self):
        g = EGraph()
        root = g.add_expr(parse_expr("1"))
        ex = TypedExtractor(g, _MiniModel(), {})
        assert ex.cost_of(root, F32) == 0.5
        assert ex.cost_of(root, F64) == 0.5

    def test_paper_example_groups_by_type(self):
        """Section 5.1's worked example: div.f64, div.f32 and rcp.f32 in one
        class; typed extraction keeps one best per output type."""
        ops = {"div.f32", "rcp.f32", "add.f64"}
        g = EGraph()
        d32 = g.add_expr(parse_expr("(div.f32 one u)", known_ops=ops))
        r32 = g.add_expr(parse_expr("(rcp.f32 u)", known_ops=ops))
        g.union(d32, r32)
        g.rebuild()
        ex = TypedExtractor(g, _MiniModel(), {"u": F32, "one": F32})
        # rcp (2 + 0.5) beats div (8 + 0.5 + 0.5)
        assert ex.extract(d32, F32).op == "rcp.f32"


class TestMultiExtraction:
    def test_one_variant_per_typed_enode(self, avx):
        from repro.core.isel import instruction_select

        prog = parse_expr("(div.f32 x y)", known_ops=set(avx.operators))
        variants = instruction_select(prog, avx, ty=F32)
        ops_used = {v.op for v in variants}
        assert "div.f32" in ops_used or any("div" in str(v) for v in variants)
        assert any("rcp.f32" in str(v) for v in variants)
        # all distinct
        assert len(set(variants)) == len(variants)

    def test_limit_respected(self, avx):
        from repro.core.isel import instruction_select

        prog = parse_expr("(div.f32 x y)", known_ops=set(avx.operators))
        variants = instruction_select(prog, avx, ty=F32, max_variants=3)
        assert len(variants) <= 3

    def test_variants_sorted_by_cost(self, avx):
        from repro.core.isel import instruction_select
        from repro.cost import TargetCostModel

        prog = parse_expr("(div.f32 x y)", known_ops=set(avx.operators))
        variants = instruction_select(prog, avx, ty=F32)
        model = TargetCostModel(avx)
        costs = [model.program_cost(v) for v in variants]
        assert costs == sorted(costs)
