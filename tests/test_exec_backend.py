"""Tests for the empirical execution backends (repro.exec low level).

Covers compiler discovery (including the ``REPRO_CC=none`` disable knob CI
uses for its no-compiler leg), the content-addressed build cache, the
sandboxed Python backend, identifier sanitization for weird FPCore names,
and — the correctness contract — that executed emitted code agrees with
the fpeval machine for every builtin target over a sample of benchsuite
cores.  All C-backend tests auto-skip when no system compiler exists.
"""

from __future__ import annotations

import math

import pytest

from repro.accuracy.sampler import SampleConfig, sample_core
from repro.benchsuite import core_named
from repro.core.output import sanitize_identifier, to_c, to_python
from repro.core.transcribe import Untranscribable, transcribe
from repro.exec import (
    BuildCache,
    BuildError,
    MathLink,
    PythonExecError,
    backend_availability,
    build_shared,
    c_backend_available,
    compile_python_function,
    executable_for,
    find_compiler,
    validate_program,
)
from repro.exec import builder
from repro.ir.fpcore import parse_fpcore
from repro.targets import TARGET_NAMES, get_target

HAVE_CC = c_backend_available()
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler on PATH")

SMALL = SampleConfig(n_train=4, n_test=8, min_points=4)


# --- compiler discovery --------------------------------------------------------------


class TestFindCompiler:
    def test_disable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "none")
        builder._COMPILER_CACHE.clear()
        assert find_compiler() is None
        assert not c_backend_available()

    def test_env_names_a_compiler(self, monkeypatch):
        real = find_compiler()
        if real is None:
            pytest.skip("no C compiler on PATH")
        monkeypatch.setenv("REPRO_CC", real)
        builder._COMPILER_CACHE.clear()
        assert find_compiler() == real

    def test_probe_is_cached_per_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "off")
        builder._COMPILER_CACHE.clear()
        assert find_compiler() is None
        # A poisoned cache entry would be returned verbatim: prove the
        # second call is the cache, not a re-probe.
        builder._COMPILER_CACHE["off"] = "sentinel"
        assert find_compiler() == "sentinel"
        builder._COMPILER_CACHE.clear()


# --- identifier sanitization (satellite) ---------------------------------------------


class TestSanitizeIdentifier:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("sqrt-sub", "sqrt_sub"),
            ("a b c", "a_b_c"),
            ("f.g", "f_g"),
            ("2nd try (fast)", "_2nd_try__fast_"),
            ("", "program"),
            ("__ok__", "__ok__"),
            # Keywords and the math binding are valid-looking but unusable.
            ("lambda", "lambda_"),
            ("double", "double_"),
            ("math", "math_"),
        ],
    )
    def test_cases(self, name, expected):
        assert sanitize_identifier(name) == expected

    def test_keyword_argument_renders_executable_python(self, c99):
        from repro.ir.expr import App, Var

        template = parse_fpcore(
            "(FPCore kw (a) (+ a 1))", known_ops=set(c99.operators)
        )
        core = type(template)(
            arguments=("lambda",),
            body=App("+", (Var("lambda"), template.body.args[1])),
            name="kw",
            precision=template.precision,
        )
        program = transcribe(core.body, c99, core.precision)
        source = to_python(program, core, c99)
        assert "def kw(lambda_):" in source
        executable = executable_for(program, core, c99, backend="python")
        assert executable.run_point({"lambda": 2.0}) == 3.0

    def test_weird_names_render_valid_c_and_python(self, c99):
        core = parse_fpcore(
            '(FPCore (x) :name "2nd try (v1.5)" :pre (< 1 x 2) (+ x 1))',
            known_ops=set(c99.operators),
        )
        # The transport layer carries odd names in :name; the renderers
        # must still emit valid identifiers.
        core = type(core)(
            arguments=core.arguments, body=core.body,
            name="2nd try (v1.5)", precision=core.precision, pre=core.pre,
        )
        program = transcribe(core.body, c99, core.precision)
        c_src = to_c(program, core, c99)
        py_src = to_python(program, core, c99)
        assert "double _2nd_try__v1_5_(double x)" in c_src
        assert "def _2nd_try__v1_5_(x):" in py_src
        fn = compile_python_function(py_src, "_2nd_try__v1_5_", target=c99)
        assert fn(1.5) == 2.5

    def test_weird_argument_names_render_and_execute(self, c99):
        # Argument names are as unconstrained as core names; both the
        # signature and every body reference must be renamed consistently
        # (and uniquified: x-y and x_y collide after sanitization).
        from repro.ir.expr import App, Var

        template = parse_fpcore(
            "(FPCore coll (a b) (+ a b))", known_ops=set(c99.operators)
        )
        core = type(template)(
            arguments=("x-y", "x_y"),
            body=App("+", (Var("x-y"), Var("x_y"))),
            name="coll",
            precision=template.precision,
        )
        program = transcribe(core.body, c99, core.precision)
        source = to_python(program, core, c99)
        assert "def coll(x_y, x_y_2):" in source
        executable = executable_for(program, core, c99, backend="python")
        # run_point still looks points up under the *original* names.
        assert executable.run_point({"x-y": 1.5, "x_y": 2.0}) == 3.5
        c_source = to_c(program, core, c99)
        assert "double coll(double x_y, double x_y_2)" in c_source
        if HAVE_CC:
            built = executable_for(program, core, c99, backend="c")
            assert built.run_point({"x-y": 1.5, "x_y": 2.0}) == 3.5

    @needs_cc
    def test_weird_name_builds_and_runs_as_c(self, c99, tmp_path):
        core = parse_fpcore(
            "(FPCore (x) (+ x 1))", known_ops=set(c99.operators)
        )
        core = type(core)(
            arguments=core.arguments, body=core.body,
            name="weird name.v2", precision=core.precision,
        )
        program = transcribe(core.body, c99, core.precision)
        executable = executable_for(
            program, core, c99, backend="c", build_cache=BuildCache(tmp_path)
        )
        assert executable.fn_name == "weird_name_v2"
        assert executable.run(41.0) == 42.0


# --- the builder ---------------------------------------------------------------------


@needs_cc
class TestBuilder:
    SRC = "double f(double x) { return x * 2.0; }\n"

    def test_build_cache_hit_skips_recompile(self, tmp_path):
        cache = BuildCache(tmp_path)
        first = build_shared(self.SRC, cache=cache)
        second = build_shared(self.SRC, cache=cache)
        assert first == second
        assert cache.builds == 1 and cache.hits == 1
        assert len(cache) == 1

    def test_different_source_different_entry(self, tmp_path):
        cache = BuildCache(tmp_path)
        a = build_shared(self.SRC, cache=cache)
        b = build_shared("double f(double x) { return x; }\n", cache=cache)
        assert a != b and cache.builds == 2

    def test_bad_source_raises_build_error(self, tmp_path):
        with pytest.raises(BuildError):
            build_shared("this is not C at all {", cache=BuildCache(tmp_path))

    def test_missing_symbol_fails_at_build_time(self, tmp_path):
        # -Wl,--no-undefined: an operator with no libm symbol must fail
        # the *build* (so auto mode can degrade), not the first call.
        src = "double f(double x) { return no_such_symbol_anywhere(x); }\n"
        with pytest.raises(BuildError):
            build_shared(src, cache=BuildCache(tmp_path))

    def test_ephemeral_cache_cleanup(self):
        cache = BuildCache.ephemeral()
        root = cache.root
        build_shared(self.SRC, cache=cache)
        assert root.exists()
        cache.cleanup()
        assert not root.exists()

    def test_concurrent_builds_of_same_source_all_succeed(self, tmp_path):
        # Unique per-invocation temp files + atomic replace: parallel
        # builders of one source must never corrupt each other.
        import ctypes
        import threading

        cache = BuildCache(tmp_path)
        src = "double g(double x) { return x + 7.0; }\n"
        paths, errors = [], []

        def build():
            try:
                paths.append(build_shared(src, cache=cache))
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=build) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(paths)) == 1
        lib = ctypes.CDLL(str(paths[0]))
        lib.g.restype = ctypes.c_double
        lib.g.argtypes = [ctypes.c_double]
        assert lib.g(1.0) == 8.0

    def test_default_cache_is_shared_and_content_addressed(self):
        # No explicit cache: builds land in the process-wide ephemeral
        # cache (cleaned at exit) instead of leaking a mkdtemp per call.
        from repro.exec.builder import shared_build_cache

        src = "double h(double x) { return x - 3.0; }\n"
        first = build_shared(src)
        second = build_shared(src)
        assert first == second
        assert shared_build_cache().root in first.parents


# --- the Python backend --------------------------------------------------------------


class TestPythonBackend:
    def test_executes_emitted_source(self, c99):
        src = "import math\n\ndef f(x):\n    return math.sqrt(x) + 1\n"
        fn = compile_python_function(src, "f", target=c99)
        assert fn(4.0) == 3.0

    def test_sandbox_has_no_import_or_open(self):
        fn = compile_python_function(
            "def f(x):\n    return __import__('os').getpid()", "f"
        )
        with pytest.raises(NameError):
            fn(1.0)
        fn2 = compile_python_function(
            "def f(x):\n    return open('/etc/passwd')", "f"
        )
        with pytest.raises(NameError):
            fn2(1.0)

    def test_missing_function_is_an_error(self):
        with pytest.raises(PythonExecError):
            compile_python_function("x = 1\n", "f")

    def test_broken_source_is_an_error(self):
        with pytest.raises(PythonExecError):
            compile_python_function("def f(:\n", "f")

    def test_cast_precision_survives_the_python_backend(self, c99):
        # cast.f32 rounds, cast.f64 is the identity: the emitted name must
        # keep the suffix or both bind to one impl and f32 rounding is
        # silently dropped (executed would then diverge from the machine).
        from repro.fpeval.machine import compile_expr
        from repro.ir.parser import parse_expr

        program = parse_expr(
            "(cast.f64 (cast.f32 x))", known_ops=set(c99.operators)
        )
        core = parse_fpcore(
            "(FPCore roundtrip (x) x)", known_ops=set(c99.operators)
        )
        source = to_python(program, core, c99)
        assert "math.cast_f32" in source and "math.cast_f64" in source
        executable = executable_for(program, core, c99, backend="python")
        machine = compile_expr(program, c99.impl_registry(), core.precision)
        for x in (1.0000000001, 1.5, 3.141592653589793, 1e-40):
            assert executable.run_point({"x": x}) == machine({"x": x})
        # And the rounding really happens (the old collapsed binding
        # returned x unchanged).
        assert executable.run_point({"x": 1.0000000001}) == 1.0

    def test_mathlink_resolves_math_first_then_target_impls(self, julia):
        link = MathLink(julia)
        assert link.sin is math.sin  # real math module wins
        # sind exists only in the Julia target's registry.
        assert abs(link.sind(90.0) - 1.0) < 1e-12
        with pytest.raises(AttributeError):
            link.definitely_not_an_operator


# --- capability metadata (satellite) -------------------------------------------------


class TestBackendAvailability:
    def test_c_target_capabilities(self, c99):
        caps = backend_availability(c99)
        assert caps["languages"][0] == "c"
        assert "python" in caps["languages"] and "fpcore" in caps["languages"]
        assert caps["backends"]["python"] is True
        assert caps["backends"]["c"] == HAVE_CC

    def test_python_target_never_claims_c(self, python_target):
        caps = backend_availability(python_target)
        assert caps["backends"]["c"] is False
        assert caps["languages"][0] == "python"

    def test_disabled_compiler_disables_c(self, c99, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "none")
        builder._COMPILER_CACHE.clear()
        assert backend_availability(c99)["backends"]["c"] is False
        builder._COMPILER_CACHE.clear()


# --- emitted-code correctness across targets (satellite) -----------------------------

#: A transcendental + arithmetic mix the whole registry can mostly express.
AGREEMENT_CORES = ("sqrt-sub", "logistic", "quadratic-mod", "cos-frac")


@pytest.fixture(scope="module")
def agreement_samples():
    """One small sample set per core (sampling is target-independent)."""
    samples = {}
    for name in AGREEMENT_CORES:
        samples[name] = sample_core(core_named(name), SMALL)
    return samples


@pytest.mark.parametrize("target_name", TARGET_NAMES)
@pytest.mark.parametrize("core_name", AGREEMENT_CORES)
def test_emitted_python_agrees_with_machine(
    target_name, core_name, agreement_samples
):
    """For every builtin target: emit Python, execute it, and match the
    fpeval machine's scoring of the same program at the sampled points."""
    target = get_target(target_name)
    core = core_named(core_name)
    try:
        program = transcribe(core.body, target, core.precision)
    except Untranscribable:
        pytest.skip(f"{core_name} not transcribable for {target_name}")
    report = validate_program(
        program, core, target, agreement_samples[core_name], backend="python"
    )
    assert report.backend == "python"
    assert report.agreement_bits <= 0.5, report.as_dict()


@needs_cc
@pytest.mark.parametrize("core_name", AGREEMENT_CORES)
def test_emitted_c_agrees_with_machine(core_name, agreement_samples, tmp_path):
    """The C variant: compile emitted C with the system compiler and match
    the machine bit-for-bit-ish (within the mismatch threshold)."""
    target = get_target("c99")
    core = core_named(core_name)
    program = transcribe(core.body, target, core.precision)
    report = validate_program(
        program, core, target, agreement_samples[core_name],
        backend="c", build_cache=BuildCache(tmp_path),
    )
    assert report.backend == "c" and report.language == "c"
    assert report.agreement_bits <= 0.5, report.as_dict()


def test_vdt_fast_ops_degrade_to_python(agreement_samples):
    """A target emitting C with non-libm symbols (fast_exp) must degrade
    to the Python backend in auto mode — and say so."""
    vdt = get_target("vdt")
    core = parse_fpcore(
        "(FPCore vexp (x) :pre (< 0.1 x 4) (exp (* x x)))",
        known_ops=set(vdt.operators),
    )
    samples = sample_core(core, SMALL)
    # Force a program that uses a vdt-only operator.
    fast_exp = vdt.operators.get("fast_exp.f64")
    if fast_exp is None:
        pytest.skip("vdt target has no fast_exp.f64")
    from repro.ir.expr import App, Var

    program = App("fast_exp.f64", (App("mul.f64", (Var("x"), Var("x"))),))
    report = validate_program(program, core, vdt, samples, backend="auto")
    if HAVE_CC:
        assert report.backend == "python"
        assert "Python backend" in report.note
    else:
        assert report.backend == "python"
