"""Tests for float operator implementations and the evaluation machine."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpeval import approx, impls, to_f32
from repro.fpeval.machine import UnsupportedOperator, compile_condition, compile_expr
from repro.ir import F32, F64, parse_expr

finite = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100)


class TestBasicImpls:
    def test_div_by_zero_semantics(self):
        assert impls.div64(1.0, 0.0) == math.inf
        assert impls.div64(-1.0, 0.0) == -math.inf
        assert math.isnan(impls.div64(0.0, 0.0))

    def test_total_wrapping(self):
        assert math.isnan(impls.sqrt64(-1.0))
        assert math.isnan(impls.log64(-1.0))
        assert impls.exp64(1e9) == math.inf

    def test_fmin_fmax_nan_handling(self):
        assert impls.fmin64(math.nan, 3.0) == 3.0
        assert impls.fmax64(2.0, math.nan) == 2.0

    def test_pow_edge_cases(self):
        assert impls.pow64(2.0, 10.0) == 1024.0
        assert math.isnan(impls.pow64(-2.0, 0.5))


class TestFMA:
    def test_fused_rounding_differs_from_separate(self):
        # Classic fma witness: a*b + c where a*b rounds away information.
        a = 1.0 + 2.0**-52
        b = 1.0 + 2.0**-52
        c = -(1.0 + 2.0**-51)
        fused = impls.fma64(a, b, c)
        separate = a * b + c
        assert fused != separate  # fma keeps the 2^-104 term
        assert fused == 2.0**-104

    def test_variants_consistent(self):
        assert impls.fms64(3.0, 4.0, 5.0) == 7.0
        assert impls.fnma64(3.0, 4.0, 5.0) == -7.0
        assert impls.fnms64(3.0, 4.0, 5.0) == -17.0

    @given(finite, finite, finite)
    @settings(max_examples=50, deadline=None)
    def test_fma_correctly_rounded(self, a, b, c):
        from fractions import Fraction

        fused = impls.fma64(a, b, c)
        exact = Fraction(a) * Fraction(b) + Fraction(c)
        try:
            expected = float(exact)
        except OverflowError:
            expected = math.inf if exact > 0 else -math.inf
        assert fused == expected

    def test_infinity_passthrough(self):
        assert impls.fma64(math.inf, 1.0, 0.0) == math.inf


class TestF32:
    def test_rounds(self):
        assert to_f32(0.1) != 0.1
        assert to_f32(0.1) == float(np.float32(0.1))

    def test_add32(self):
        out = impls.add32(to_f32(0.1), to_f32(0.2))
        assert out == float(np.float32(np.float32(0.1) + np.float32(0.2)))

    def test_casts(self):
        assert impls.cast_to_f64(to_f32(1.5)) == 1.5
        assert impls.cast_to_f32(1.0 + 2.0**-40) == 1.0


class TestApproxOps:
    def test_rcp_close_but_not_exact(self):
        out = approx.rcp32(3.0)
        assert out != to_f32(1.0 / 3.0)
        assert abs(out - 1.0 / 3.0) / (1.0 / 3.0) < 2.0**-10

    def test_rcp_error_bound(self):
        # rcpps guarantees |rel err| <= 1.5 * 2^-12.
        for x in (0.7, 1.3, 2.9, 17.0, 123.456, 1e-3, 1e6):
            rel = abs(approx.rcp32(x) - 1.0 / x) * x
            assert rel < 1.5 * 2.0**-11  # keep a 2x margin over the spec

    def test_rsqrt(self):
        out = approx.rsqrt32(4.0)
        assert abs(out - 0.5) < 0.001
        assert math.isnan(approx.rsqrt32(-1.0))
        assert approx.rsqrt32(0.0) == math.inf

    def test_vdt_fast_error_is_small_but_nonzero(self):
        from repro.accuracy import ulps_between

        exact = math.exp(1.234)
        fast = approx.fast_exp64(1.234)
        assert 0 < ulps_between(fast, exact) <= 64

    def test_vdt_appr_isqrt_cruder_than_fast(self):
        from repro.accuracy import bits_of_error

        exact = 1.0 / math.sqrt(1.7)
        fast_err = bits_of_error(approx.fast_isqrt64(1.7), exact)
        appr_err = bits_of_error(approx.appr_isqrt64(1.7), exact)
        assert appr_err > fast_err

    def test_deterministic(self):
        assert approx.fast_sin64(0.5) == approx.fast_sin64(0.5)


class TestMachine:
    def test_compile_and_eval(self, c99):
        prog = parse_expr("(add.f64 x (mul.f64 y y))", known_ops=set(c99.operators))
        fn = compile_expr(prog, c99.impl_registry())
        assert fn({"x": 1.0, "y": 3.0}) == 10.0

    def test_literal_rounded_to_format(self, c99):
        prog = parse_expr("(add.f32 x 0.1)", known_ops=set(c99.operators))
        fn = compile_expr(prog, c99.impl_registry(), F32)
        assert fn({"x": 0.0}) == to_f32(0.1)

    def test_unsupported_op_raises(self, c99):
        prog = parse_expr("(frob x)", known_ops={"frob"})
        with pytest.raises(UnsupportedOperator):
            compile_expr(prog, c99.impl_registry())

    def test_if_evaluation(self, c99):
        prog = parse_expr(
            "(if (< x 0) (neg.f64 x) x)", known_ops=set(c99.operators)
        )
        fn = compile_expr(prog, c99.impl_registry())
        assert fn({"x": -2.0}) == 2.0
        assert fn({"x": 2.0}) == 2.0

    def test_condition_compile(self, c99):
        cond = compile_condition(
            parse_expr("(and (< 0 x) (< x 1))"), c99.impl_registry()
        )
        assert cond({"x": 0.5})
        assert not cond({"x": 2.0})

    def test_constants(self, c99):
        prog = parse_expr("(mul.f64 PI x)", known_ops=set(c99.operators))
        fn = compile_expr(prog, c99.impl_registry())
        assert fn({"x": 2.0}) == 2 * math.pi

    def test_nan_propagates_not_raises(self, c99):
        prog = parse_expr("(log.f64 x)", known_ops=set(c99.operators))
        fn = compile_expr(prog, c99.impl_registry())
        assert math.isnan(fn({"x": -1.0}))
