"""fp16/bf16 target tests: end-to-end narrow-format compilation.

The acceptance path from the formats issue: a bf16 FPCore compiles
end-to-end (compile → sample → score → emit → Python-backend execute) and
the two ML-format targets advertise themselves through the capabilities
metadata.
"""

import math

import pytest

from repro.accuracy.sampler import SampleConfig
from repro.core.loop import CompileConfig
from repro.core.output import render, to_c
from repro.exec.executable import backend_availability, executable_for
from repro.formats import get_format
from repro.ir.fpcore import parse_fpcore
from repro.session import ChassisSession, targets_info
from repro.targets import get_target

_CONFIG = CompileConfig(iterations=1, localize_points=8)
_SAMPLES = SampleConfig(n_train=16, n_test=16)


def _core(fmt_name: str):
    return parse_fpcore(
        f"(FPCore logistic-{fmt_name} (x) :precision {fmt_name} "
        ":pre (< -10 x 10) (/ 1 (+ 1 (exp (neg x)))))"
    )


@pytest.mark.parametrize("fmt_name", ["fp16", "bf16"])
def test_narrow_format_compiles_end_to_end(fmt_name):
    target = get_target(fmt_name)
    core = _core(fmt_name)
    with ChassisSession(config=_CONFIG, sample_config=_SAMPLES) as session:
        result = session.compile(core, target)
    assert len(result.frontier) >= 1
    best = result.frontier.best_error()
    # Scored error is measured in the format's own bits.
    fmt = get_format(fmt_name)
    assert 0.0 <= best.error <= fmt.bits

    # Emission routes every operator through the linked format impls.
    source = render(best.program, core, target)
    assert f"_{fmt.suffix}(" in source

    # The emitted Python executes under the sandboxed backend and returns
    # values exactly representable in the format.
    program = executable_for(best.program, core, target, backend="python")
    for x in (-4.0, -1.0, 0.0, 0.5, 1.0, 4.0):
        out = program.run_point({"x": x})
        assert math.isfinite(out)
        assert out == fmt.round_float(out), f"{out} not {fmt_name}-representable"
        assert abs(out - 1.0 / (1.0 + math.exp(-x))) < 0.05


@pytest.mark.parametrize("fmt_name", ["fp16", "bf16"])
def test_narrow_format_capabilities(fmt_name):
    target = get_target(fmt_name)
    caps = backend_availability(target)
    assert fmt_name in caps["formats"]
    assert caps["backends"]["python"] is True
    assert caps["backends"]["c"] is False  # no C scalar type
    by_name = {t["name"]: t for t in targets_info()}
    assert fmt_name in by_name
    assert fmt_name in by_name[fmt_name]["capabilities"]["formats"]


def test_narrow_format_refuses_c_emission():
    target = get_target("bf16")
    core = _core("bf16")
    with pytest.raises(ValueError, match="no C scalar type"):
        to_c(core.body, core, target)


def test_narrow_ops_round_into_format():
    """Every linked operator result is representable in its format."""
    for fmt_name in ("fp16", "bf16"):
        fmt = get_format(fmt_name)
        registry = get_target(fmt_name).impl_registry()
        add = registry[f"add.{fmt.suffix}"].impl
        exp = registry[f"exp.{fmt.suffix}"].impl
        one_third = add(1.0 / 3.0, 0.0)
        assert one_third == fmt.round_float(1.0 / 3.0)
        assert exp(1.0) == fmt.round_float(math.e)
        # Overflow saturates to infinity at the format's range, not f64's.
        big = fmt.from_ordinal(fmt.max_ordinal)
        assert add(big, big) == math.inf
