"""Cross-target integration smoke tests: compile on every built-in target.

These are the reproduction's equivalent of the paper's headline claim
("Chassis can compile to a diverse set of targets", section 6.1): one
benchmark per operator-capability tier, compiled on all nine targets, with
the universal invariants checked — well-typed output, Pareto-consistent
frontier, output at least as accurate as the input.
"""

import dataclasses

import pytest

from repro.accuracy import SampleConfig, sample_core
from repro.benchsuite import core_named
from repro.core import CompileConfig, Untranscribable, compile_fpcore
from repro.cost import TargetCostModel
from repro.targets import TARGET_NAMES, get_target

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SMALL = SampleConfig(n_train=12, n_test=12)

#: One arithmetic-only benchmark (every target can express it).
ARITH_BENCH = "sqrt-sub"
#: One transcendental benchmark (hardware targets need polynomials).
TRANSCENDENTAL_BENCH = "logistic"


def _core_for(bench: str, target):
    """The benchmark retuned to a format the target computes in.

    The narrow-format targets (fp16/bf16) carry no binary64 operators —
    compiling on them means compiling *into* their format, so the core's
    ``:precision`` moves to the target's and sampling follows.
    """
    core = core_named(bench)
    formats = target.float_types()
    if core.precision not in formats:
        core = dataclasses.replace(core, precision=formats[0])
    return core


@pytest.fixture(scope="module")
def arith_samples():
    return sample_core(core_named(ARITH_BENCH), SMALL)


@pytest.fixture(scope="module")
def transcendental_samples():
    return sample_core(core_named(TRANSCENDENTAL_BENCH), SMALL)


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_arith_benchmark_on_every_target(target_name, arith_samples):
    target = get_target(target_name)
    core = _core_for(ARITH_BENCH, target)
    samples = (
        arith_samples
        if core.precision == "binary64"
        else sample_core(core, SMALL)
    )
    result = compile_fpcore(core, target, FAST, samples=samples)

    assert len(result.frontier) >= 1
    model = TargetCostModel(target)
    for candidate in result.frontier:
        assert model.supports_program(candidate.program), candidate
        assert 0 <= candidate.error <= 64
        assert candidate.cost > 0
    assert (
        result.frontier.best_error().error
        <= result.input_candidate.error + 1e-9
    )


@pytest.mark.parametrize("target_name", TARGET_NAMES)
def test_transcendental_benchmark_on_every_target(
    target_name, transcendental_samples
):
    target = get_target(target_name)
    core = _core_for(TRANSCENDENTAL_BENCH, target)
    samples = (
        transcendental_samples
        if core.precision == "binary64"
        else sample_core(core, SMALL)
    )
    result = compile_fpcore(core, target, FAST, samples=samples)
    assert len(result.frontier) >= 1
    model = TargetCostModel(target)
    for candidate in result.frontier:
        assert model.supports_program(candidate.program)
    if target_name in ("arith", "arith-fma", "avx"):
        # No exp instruction: the output must be a polynomial.
        for candidate in result.frontier:
            assert "exp" not in str(candidate.program)
