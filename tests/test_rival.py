"""Tests for the interval oracle: enclosure soundness and correct rounding."""

import math

import mpmath
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from mpmath import mp, mpf

from repro.ir import parse_expr
from repro.rival import DomainError, Interval, PrecisionExhausted, RivalEvaluator
from repro.rival.interval import (
    iadd,
    icos,
    idiv,
    iexp,
    ifabs,
    ilog,
    imul,
    ipow,
    isin,
    isqrt,
    isub,
    itan,
)


class TestIntervalBasics:
    def test_point(self):
        iv = Interval.point(1.5)
        assert iv.is_point()
        assert iv.contains(1.5)

    def test_error_flag(self):
        assert Interval.error().err

    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_contains_zero(self):
        assert Interval(-1, 1).contains_zero()
        assert not Interval(1, 2).contains_zero()


class TestIntervalOps:
    def setup_method(self):
        mp.prec = 80

    def test_add_encloses(self):
        out = iadd(Interval.point(0.1), Interval.point(0.2))
        assert out.contains(mpf(0.1) + mpf(0.2))  # exact sum of the doubles

    def test_sub_orientation(self):
        out = isub(Interval(0, 1), Interval(0, 1))
        assert out.lo <= -1 + 1e-9 and out.hi >= 1 - 1e-9

    def test_mul_sign_cases(self):
        out = imul(Interval(-2, 3), Interval(-5, 1))
        assert out.contains(-15) and out.contains(10)

    def test_div_by_zero_interval_errs(self):
        assert idiv(Interval.point(1), Interval(-1, 1)).err

    def test_div_exact_zero_errs(self):
        assert idiv(Interval.point(1), Interval.point(0)).err

    def test_sqrt_domain(self):
        assert isqrt(Interval(-1, 1)).err
        assert not isqrt(Interval(0, 4)).err

    def test_log_domain(self):
        assert ilog(Interval(-1, 1)).err
        assert ilog(Interval.point(0)).err

    def test_exp_monotone(self):
        out = iexp(Interval(0, 1))
        assert out.contains(1) and out.contains(mpmath.e)

    def test_fabs_straddling(self):
        out = ifabs(Interval(-3, 2))
        assert out.lo == 0 and out.contains(3)

    def test_sin_width_clamps(self):
        out = isin(Interval(0, 100))
        assert out.lo == -1 and out.hi == 1

    def test_sin_includes_max(self):
        out = isin(Interval(1, 2))  # contains pi/2
        assert out.hi == 1

    def test_sin_narrow(self):
        out = isin(Interval.point(0.5))
        assert out.contains(mpmath.sin(mpf("0.5")))
        assert out.width() < mpf(2) ** -60

    def test_cos_at_zero(self):
        out = icos(Interval.point(0))
        assert out.contains(1)

    def test_tan_asymptote(self):
        assert itan(Interval(1, 2)).err  # pi/2 inside

    def test_pow_integer_even(self):
        out = ipow(Interval(-2, 1), Interval.point(2))
        assert out.lo <= 0 <= out.lo + 1e-9 or out.lo == 0
        assert out.contains(4)

    def test_pow_negative_base_noninteger_errs(self):
        assert ipow(Interval(-2, -1), Interval.point(0.5)).err


# --- hypothesis: enclosure property over random points ---------------------------------

_reasonable = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(_reasonable, _reasonable)
@settings(max_examples=60, deadline=None)
def test_interval_mul_encloses_true_product(x, y):
    mp.prec = 80
    out = imul(Interval.point(x), Interval.point(y))
    true = mpf(x) * mpf(y)
    assert out.err or (out.lo <= true <= out.hi)


@given(st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_interval_log_exp_roundtrip_encloses(x):
    mp.prec = 80
    out = iexp(ilog(Interval.point(x)))
    assert out.err or (out.lo <= mpf(x) <= out.hi)


class TestRivalEvaluator:
    def setup_method(self):
        self.ev = RivalEvaluator()

    def test_correct_rounding_simple(self):
        assert self.ev.eval(parse_expr("(/ 1 x)"), {"x": 3.0}) == 1 / 3

    def test_correct_rounding_cancellation(self):
        # The float computation loses everything; the oracle must not.
        result = self.ev.eval(parse_expr("(- (sqrt (+ x 1)) (sqrt x))"), {"x": 1e20})
        assert result == pytest.approx(5e-11, rel=1e-12)

    def test_huge_argument_trig(self):
        result = self.ev.eval(parse_expr("(sin x)"), {"x": 1e10})
        assert result == pytest.approx(math.sin(1e10), abs=0)

    def test_domain_error(self):
        with pytest.raises(DomainError):
            self.ev.eval(parse_expr("(log x)"), {"x": -2.0})

    def test_division_by_exact_zero(self):
        with pytest.raises(DomainError):
            self.ev.eval(parse_expr("(/ 1 x)"), {"x": 0.0})

    def test_overflow_to_inf(self):
        assert self.ev.eval(parse_expr("(exp x)"), {"x": 1000.0}) == math.inf

    def test_binary32_rounding(self):
        import numpy as np

        out = self.ev.eval(parse_expr("(/ 1 x)"), {"x": 3.0}, ty="binary32")
        assert out == float(np.float32(1.0) / np.float32(3.0))

    def test_if_branch_selection(self):
        expr = parse_expr("(if (< x 0) (- x) x)")
        assert self.ev.eval(expr, {"x": -4.0}) == 4.0
        assert self.ev.eval(expr, {"x": 4.0}) == 4.0

    def test_eval_bool(self):
        assert self.ev.eval_bool(parse_expr("(and (< 0 x) (< x 1))"), {"x": 0.5})
        assert not self.ev.eval_bool(parse_expr("(< x 0)"), {"x": 0.5})

    def test_defined_at(self):
        expr = parse_expr("(sqrt x)")
        assert self.ev.defined_at(expr, {"x": 4.0})
        assert not self.ev.defined_at(expr, {"x": -4.0})

    def test_constants(self):
        assert self.ev.eval(parse_expr("PI"), {}) == math.pi
        assert self.ev.eval(parse_expr("(exp 1)"), {}) == math.e

    def test_rational_literal(self):
        assert self.ev.eval(parse_expr("(+ x 1/3)"), {"x": 0.0}) == 1 / 3

    @given(st.floats(min_value=0.01, max_value=100, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_matches_libm_within_one_ulp(self, x):
        """The oracle agrees with (correctly-rounded-ish) libm closely."""
        from repro.accuracy import ulps_between

        oracle = self.ev.eval(parse_expr("(log x)"), {"x": x})
        assert ulps_between(oracle, math.log(x)) <= 1
