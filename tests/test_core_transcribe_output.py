"""Tests for transcription (FPCore -> target programs) and code generation."""

import pytest

from repro.core import Untranscribable, render, to_c, to_fpcore, to_julia, to_python, transcribe
from repro.ir import F32, F64, parse_expr, parse_fpcore


class TestTranscribe:
    def test_direct(self, c99):
        out = transcribe(parse_expr("(+ x (sqrt y))"), c99)
        assert out == parse_expr(
            "(add.f64 x (sqrt.f64 y))", known_ops=set(c99.operators)
        )

    def test_f32(self, c99):
        out = transcribe(parse_expr("(/ x y)"), c99, F32)
        assert out.op == "div.f32"

    def test_neg_fallback_on_avx(self, avx):
        # AVX has no negation instruction: (- 0 x) is used instead.
        out = transcribe(parse_expr("(neg x)"), avx)
        assert out == parse_expr("(sub.f64 0 x)", known_ops=set(avx.operators))

    def test_helper_desugaring_fallback(self, python_target):
        # Python has no fma... and no need here; but hypot exists; cbrt doesn't.
        out = transcribe(parse_expr("(cbrt x)"), python_target)
        assert "pow.f64" in out.operators()

    def test_unsupported_raises(self, arith):
        with pytest.raises(Untranscribable):
            transcribe(parse_expr("(sin x)"), arith)

    def test_conditionals(self, c99):
        out = transcribe(parse_expr("(if (< x 0) (neg x) x)"), c99)
        assert out.op == "if"
        assert out.args[0].op == "<"

    def test_accurate_operator_preferred(self, vdt):
        out = transcribe(parse_expr("(exp x)"), vdt)
        assert out.op == "exp.f64"  # never fast_exp for input programs

    def test_no_fallbacks_mode(self, python_target):
        with pytest.raises(Untranscribable):
            transcribe(
                parse_expr("(cbrt x)"), python_target, allow_fallbacks=False
            )


class TestCodegen:
    def setup_method(self):
        self.core = parse_fpcore("(FPCore prog (x y) (+ x (* y y)))")

    def test_c(self, c99):
        program = transcribe(self.core.body, c99)
        source = to_c(program, self.core, c99)
        assert "double prog(double x, double y)" in source
        assert "return (x + (y * y));" in source
        assert "#include <math.h>" in source

    def test_c_f32_suffixes(self, c99):
        core32 = parse_fpcore("(FPCore p (x) :precision binary32 (sqrt x))")
        program = transcribe(core32.body, c99, F32)
        source = to_c(program, core32, c99)
        assert "sqrtf(x)" in source
        assert "float p(float x)" in source

    def test_python_runs(self, python_target):
        program = transcribe(parse_expr("(+ x (sqrt y))"), python_target)
        source = to_python(program, parse_fpcore("(FPCore f (x y) (+ x (sqrt y)))"), python_target)
        namespace: dict = {}
        exec(source, namespace)  # noqa: S102 - testing generated code
        assert namespace["f"](1.0, 4.0) == 3.0

    def test_python_conditional_runs(self, python_target):
        expr = parse_expr("(if (< x 0) (neg x) x)")
        program = transcribe(expr, python_target)
        core = parse_fpcore("(FPCore absval (x) (if (< x 0) (- x) x))")
        namespace: dict = {}
        exec(to_python(program, core, python_target), namespace)  # noqa: S102
        assert namespace["absval"](-3.0) == 3.0

    def test_julia(self, julia):
        program = parse_expr(
            "(add.f64 (abs2.f64 x) (sind.f64 y))", known_ops=set(julia.operators)
        )
        core = parse_fpcore("(FPCore g (x y) (+ (* x x) (sin y)))")
        source = to_julia(program, core, julia)
        assert "function g(x, y)" in source
        assert "abs2(x)" in source and "sind(y)" in source

    def test_fpcore_roundtrip(self, c99):
        program = transcribe(self.core.body, c99)
        text = to_fpcore(program, self.core)
        again = parse_fpcore(text, known_ops=set(c99.operators))
        assert again.body == program

    def test_render_dispatches(self, c99, julia, python_target):
        program = transcribe(self.core.body, c99)
        assert "#include" in render(program, self.core, c99)
        py_prog = transcribe(self.core.body, python_target)
        assert "def prog" in render(py_prog, self.core, python_target)
        jl_prog = transcribe(self.core.body, julia)
        assert "function prog" in render(jl_prog, self.core, julia)
