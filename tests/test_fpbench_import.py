"""FPBench corpus importer tests: filter, don't crash."""

import pytest

from repro.benchsuite import (
    curated_suite,
    filter_cores,
    import_fpbench,
    import_fpcores_text,
)

_MIXED = """
; a comment line, as FPBench files have
(FPCore good (x) :precision binary32 :pre (< 0 x 1) (sqrt (+ x 1)))
(FPCore looped (x n) :precision binary64
  (while (< i n) ([i 0 (+ i 1)]) x))
(FPCore exotic (x) :precision binary80 (+ x 1))
(FPCore half-ok (x) :precision fp16 :pre (< 0 x 10) (exp x))
(FPCore letcore (x) (let ([y (+ x 1)]) (* y y)))
"""


def test_import_skips_with_reason_not_crash():
    report = import_fpcores_text(_MIXED, source_file="mixed.fpcore")
    assert [c.name for c in report.cores] == ["good", "half-ok", "letcore"]
    reasons = {s.name: s.reason for s in report.skipped}
    assert set(reasons) == {"looped", "exotic"}
    assert "binary80" in reasons["exotic"]
    assert "registered formats" in reasons["exotic"]
    assert all(s.source_file == "mixed.fpcore" for s in report.skipped)
    assert "imported 3 cores, skipped 2" == report.summary()


def test_import_unbalanced_file_is_one_skip():
    report = import_fpcores_text("(FPCore broken (x", source_file="bad.fpcore")
    assert report.cores == []
    assert len(report.skipped) == 1
    assert "unparseable" in report.skipped[0].reason


def test_import_fpbench_directory(tmp_path):
    (tmp_path / "a.fpcore").write_text(
        "(FPCore a1 (x) :pre (< 0 x 1) (sqrt x))\n"
    )
    (tmp_path / "b.fpcore").write_text(
        "(FPCore b1 (x) :precision binary128 (+ x 1))\n"
        "(FPCore b2 (x) (exp x))\n"
    )
    (tmp_path / "notes.txt").write_text("not a benchmark\n")
    report = import_fpbench(tmp_path)
    assert [c.name for c in report.cores] == ["a1", "b2"]  # sorted files
    assert [s.name for s in report.skipped] == ["b1"]


def test_import_fpbench_missing_path(tmp_path):
    with pytest.raises(FileNotFoundError):
        import_fpbench(tmp_path / "nope")
    with pytest.raises(FileNotFoundError):
        import_fpbench(tmp_path)  # exists but holds no .fpcore files


def test_filter_cores_reasons():
    report = import_fpcores_text(_MIXED)
    kept = filter_cores(
        report.cores,
        operators={"sqrt", "+", "*", "exp"},
        max_arguments=1,
        precisions={"binary32", "binary64"},
        require_pre=True,
    )
    assert [c.name for c in kept.cores] == ["good"]
    reasons = {s.name: s.reason for s in kept.skipped}
    assert reasons["half-ok"].startswith("precision:")
    assert reasons["letcore"].startswith("no :pre")


def test_curated_suite_passes_its_own_filter():
    """The curated corpus is fully importable by construction."""
    cores = curated_suite()
    report = filter_cores(cores, precisions={"binary32", "binary64"})
    assert len(report.cores) == len(cores)
    assert report.skipped == []
