"""Numerical soundness check of the entire rewrite-rule database.

Every rule ``lhs => rhs`` must preserve *real-number* semantics (that is the
whole premise of desugaring preservation).  We verify each rule by
evaluating both sides with mpmath at random benign points and comparing.
Rules tagged as sound only away from singularities/domains are checked on
points inside their safe region.
"""

from __future__ import annotations

import math

import mpmath
import pytest
from mpmath import mp, mpf

from repro.rules import all_rules, opportunity_rules, simplify_rules
from repro.targets.synth import mp_eval

#: Benign sample values avoiding singularities of / log / sqrt / atanh.
_SAMPLES = [
    {"a": mpf("0.341"), "b": mpf("0.527"), "c": mpf("0.713")},
    {"a": mpf("0.82"), "b": mpf("0.194"), "c": mpf("0.455")},
    {"a": mpf("0.66"), "b": mpf("0.91"), "c": mpf("0.23")},
]


def _check_rule(rule, env) -> None:
    with mp.workprec(160):
        try:
            lhs = mp_eval(rule.lhs, env)
            rhs = mp_eval(rule.rhs, env)
        except (ValueError, ZeroDivisionError, KeyError):
            pytest.skip("point outside rule domain")
        if not (mpmath.isfinite(lhs) and mpmath.isfinite(rhs)):
            pytest.skip("non-finite at sample point")
        scale = max(abs(lhs), abs(rhs), mpf(1))
        assert abs(lhs - rhs) / scale < mpf(2) ** -100, (
            f"rule {rule.name}: lhs={lhs}, rhs={rhs} at {env}"
        )


@pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.name)
def test_rule_preserves_real_semantics(rule):
    free = sorted(rule.lhs.free_vars() | rule.rhs.free_vars())
    checked = 0
    for sample in _SAMPLES:
        env = {name: sample[name] for name in free if name in sample}
        if len(env) != len(free):
            pytest.skip("rule uses unexpected variable names")
        try:
            _check_rule(rule, env)
            checked += 1
        except pytest.skip.Exception:
            continue
    if checked == 0:
        pytest.skip("no valid sample point for this rule")


class TestRuleSubsets:
    def test_simplify_rules_never_grow(self):
        for rule in simplify_rules():
            assert rule.rhs.size() <= rule.lhs.size(), rule.name

    def test_simplify_subset_of_all(self):
        names = {r.name for r in all_rules()}
        assert all(r.name in names for r in simplify_rules())

    def test_opportunity_superset_of_simplify(self):
        opp = {r.name for r in opportunity_rules()}
        assert {r.name for r in simplify_rules()} <= opp
        assert "div-as-mul-rcp" in opp

    def test_no_duplicate_names(self):
        names = [r.name for r in all_rules()]
        assert len(names) == len(set(names))

    def test_database_size(self):
        # The database should stay substantial (Herbie ships 325 rules).
        assert len(all_rules()) >= 150

    def test_rules_for_operators_prunes(self):
        from repro.rules import rules_for_operators

        arith_only = rules_for_operators({"+", "-", "*", "/", "neg"})
        assert 0 < len(arith_only) < len(all_rules())
        for rule in arith_only:
            ops = rule.lhs.operators() | rule.rhs.operators()
            assert "sin" not in ops and "log" not in ops
