"""Tests for e-matching, rewrites, and the saturation runner."""

import pytest

from repro.egraph import (
    EGraph,
    RunnerLimits,
    ematch_class,
    extract_best,
    instantiate,
    run_rules,
    rw,
    search_pattern,
)
from repro.ir import parse_expr


class TestEMatch:
    def test_var_pattern_binds(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x y)"))
        matches = list(ematch_class(g, parse_expr("(+ a b)"), root))
        assert len(matches) == 1
        subst = matches[0]
        assert g.same(subst["a"], g.lookup_expr(parse_expr("x")))
        assert g.same(subst["b"], g.lookup_expr(parse_expr("y")))

    def test_nonlinear_pattern(self):
        g = EGraph()
        same = g.add_expr(parse_expr("(+ x x)"))
        diff = g.add_expr(parse_expr("(+ x y)"))
        assert list(ematch_class(g, parse_expr("(+ a a)"), same))
        assert not list(ematch_class(g, parse_expr("(+ a a)"), diff))

    def test_nonlinear_matches_after_union(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x y)"))
        g.union(g.lookup_expr(parse_expr("x")), g.lookup_expr(parse_expr("y")))
        g.rebuild()
        assert list(ematch_class(g, parse_expr("(+ a a)"), root))

    def test_literal_pattern(self):
        g = EGraph()
        one = g.add_expr(parse_expr("(* x 1)"))
        other = g.add_expr(parse_expr("(* x 2)"))
        pattern = parse_expr("(* a 1)")
        assert list(ematch_class(g, pattern, one))
        assert not list(ematch_class(g, pattern, other))

    def test_nested_pattern(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(sqrt (+ x 1))"))
        matches = list(ematch_class(g, parse_expr("(sqrt (+ a 1))"), root))
        assert len(matches) == 1

    def test_search_pattern_finds_all(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ a b) (+ c d))"))
        found = search_pattern(g, parse_expr("(+ p q)"))
        assert len(found) == 3

    def test_search_pattern_limit(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ a b) (+ c d))"))
        assert len(search_pattern(g, parse_expr("(+ p q)"), limit=2)) == 2

    def test_instantiate(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x y)"))
        (subst,) = ematch_class(g, parse_expr("(+ a b)"), root)
        new = instantiate(g, parse_expr("(* a b)"), subst)
        assert g.represents(new, parse_expr("(* x y)"))

    def test_instantiate_unbound_raises(self):
        g = EGraph()
        with pytest.raises(KeyError):
            instantiate(g, parse_expr("(+ a b)"), {"a": 0})


class TestRewrite:
    def test_basic_application(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ q q)"))
        rule = rw("double", "(+ a a)", "(* 2 a)")
        assert rule.apply(g) == 1
        g.rebuild()
        assert g.represents(root, parse_expr("(* 2 q)"))

    def test_rhs_unbound_rejected(self):
        with pytest.raises(ValueError):
            rw("bad", "(+ a a)", "(+ a b)")

    def test_condition_blocks(self):
        g = EGraph()
        g.add_expr(parse_expr("(/ q q)"))
        rule = rw("cancel", "(/ a a)", "1", condition=lambda eg, s: False)
        assert rule.apply(g) == 0

    def test_nondestructive(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ q q)"))
        rw("double", "(+ a a)", "(* 2 a)").apply(g)
        g.rebuild()
        # the original form is still represented
        assert g.represents(root, parse_expr("(+ q q)"))
        assert g.represents(root, parse_expr("(* 2 q)"))


class TestRunner:
    def test_saturates(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x 0)"))
        report = run_rules(g, [rw("id", "(+ a 0)", "a")])
        assert report.stop_reason == "saturated"
        assert g.same(root, g.lookup_expr(parse_expr("x")))

    def test_node_limit_respected(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ x y)"))
        # each round introduces a fresh (* a a) class: unbounded growth
        rules = [
            rw("comm", "(+ a b)", "(+ b a)"),
            rw("grow", "(+ a b)", "(+ (* a a) b)"),
        ]
        limits = RunnerLimits(max_iterations=50, max_nodes=60)
        report = run_rules(g, rules, limits)
        assert report.stop_reason == "node-limit"
        assert g.num_nodes <= 80  # small overshoot within one batch is fine

    def test_iteration_limit(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ x y)"))
        rules = [rw("grow", "(+ a b)", "(+ (* a a) b)")]
        report = run_rules(g, rules, RunnerLimits(max_iterations=2, max_nodes=10**6))
        assert report.iterations <= 2

    def test_rule_match_counts_reported(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ x 0) 0)"))
        report = run_rules(g, [rw("id", "(+ a 0)", "a")])
        assert report.rule_matches.get("id", 0) >= 2

    def test_composed_rewrites_reach_target(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x x)"))
        rules = [
            rw("double", "(+ a a)", "(* 2 a)"),
            rw("comm", "(* a b)", "(* b a)"),
        ]
        run_rules(g, rules)
        assert g.represents(root, parse_expr("(* x 2)"))
