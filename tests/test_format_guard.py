"""f32/f64 byte-identity guard across the number-format refactor.

Recomputes the job fingerprints and canonical ``CompileResult`` payload
digests for the benchmark x target sample pinned in
``tests/data/format_guard_baseline.json`` and compares them byte-for-byte:

* **fingerprints may not change** — warm persistent caches must survive
  format-layer changes for binary32/binary64 cores;
* **payloads may not change** — the whole compile pipeline (sampling,
  oracle, scoring, emission) must produce bit-identical results.

Regenerate the baseline (only when an *intentional* behavior change lands)
with ``PYTHONPATH=src python tests/data/capture_format_guard.py``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_DATA = Path(__file__).parent / "data"


def _load_capture():
    spec = importlib.util.spec_from_file_location(
        "capture_format_guard", _DATA / "capture_format_guard.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def recaptured():
    return _load_capture().capture()


@pytest.fixture(scope="module")
def baseline():
    return json.loads((_DATA / "format_guard_baseline.json").read_text())


def test_baseline_covers_both_legacy_formats(baseline):
    precisions = {row["precision"] for row in baseline["jobs"]}
    assert precisions == {"binary32", "binary64"}


def test_fingerprints_unchanged(recaptured, baseline):
    """Cache keys are stable: a warm cache survives the format layer."""
    want = {
        (r["benchmark"], r["target"]): r["fingerprint"]
        for r in baseline["jobs"]
    }
    got = {
        (r["benchmark"], r["target"]): r["fingerprint"]
        for r in recaptured["jobs"]
    }
    assert got == want


def test_payloads_byte_identical(recaptured, baseline):
    """Full compile results are bit-identical for f32/f64 benchmarks."""
    want = {
        (r["benchmark"], r["target"]): r["payload_sha256"]
        for r in baseline["jobs"]
    }
    got = {
        (r["benchmark"], r["target"]): r["payload_sha256"]
        for r in recaptured["jobs"]
    }
    assert got == want
