"""Printer tests, including the parse/print round-trip property."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import App, Const, Num, Var, expr_to_infix, expr_to_sexpr, parse_expr
from repro.ir.printer import format_fraction


class TestFormatFraction:
    @pytest.mark.parametrize(
        "value, text",
        [
            (Fraction(3), "3"),
            (Fraction(-4), "-4"),
            (Fraction(1, 2), "0.5"),
            (Fraction(1, 4), "0.25"),
            (Fraction(1, 10), "0.1"),
            (Fraction(-3, 20), "-0.15"),
            (Fraction(1, 3), "1/3"),
            (Fraction(-5, 7), "-5/7"),
        ],
    )
    def test_rendering(self, value, text):
        assert format_fraction(value) == text

    def test_exact_roundtrip_via_parser(self):
        from repro.ir import parse_number

        for value in (Fraction(1, 3), Fraction(7, 10), Fraction(-9, 8), Fraction(123)):
            assert parse_number(format_fraction(value)) == value


class TestSexprPrinter:
    def test_basic(self):
        assert expr_to_sexpr(parse_expr("(+ x 1)")) == "(+ x 1)"

    def test_neg_prints_as_unary_minus(self):
        assert expr_to_sexpr(parse_expr("(- x)")) == "(- x)"

    def test_constants(self):
        assert expr_to_sexpr(Const("PI")) == "PI"


class TestInfixPrinter:
    def test_precedence(self):
        assert expr_to_infix(parse_expr("(* (+ a b) c)")) == "(a + b) * c"
        assert expr_to_infix(parse_expr("(+ a (* b c))")) == "a + b * c"

    def test_function_calls(self):
        assert expr_to_infix(parse_expr("(sqrt (+ x 1))")) == "sqrt(x + 1)"

    def test_if(self):
        text = expr_to_infix(parse_expr("(if (< x 0) (- x) x)"))
        assert "if" in text and "else" in text


# --- hypothesis: parse(print(e)) == e ---------------------------------------------------

_leaves = st.one_of(
    st.sampled_from([Var("x"), Var("y"), Var("z"), Const("PI"), Const("E")]),
    st.integers(min_value=-1000, max_value=1000).map(Num),
    st.fractions(min_value=-100, max_value=100).map(Num),
)


def _apps(children):
    unary = st.sampled_from(["sqrt", "exp", "log", "sin", "neg", "fabs"])
    binary = st.sampled_from(["+", "-", "*", "/", "pow", "hypot"])
    return st.one_of(
        st.builds(lambda op, a: App(op, (a,)), unary, children),
        st.builds(lambda op, a, b: App(op, (a, b)), binary, children, children),
    )


expr_strategy = st.recursive(_leaves, _apps, max_leaves=20)


@given(expr_strategy)
def test_print_parse_roundtrip(expr):
    assert parse_expr(expr_to_sexpr(expr)) == expr
