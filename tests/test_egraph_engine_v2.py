"""Engine v2 tests: incremental e-matching equivalence and determinism,
worklist-extractor parity with the old fixpoint, saturation reuse, engine
counters, and the runner's deadline/truncation satellites."""

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.isel import (
    DEFAULT_ISEL_LIMITS,
    SaturationCache,
    _rules_for,
    instruction_select,
)
from repro.cost.model import TargetCostModel
from repro.deadline import DeadlineExceeded, deadline
from repro.egraph import (
    EGraph,
    EngineStats,
    ExtractionError,
    Extractor,
    RunnerLimits,
    TypedExtractor,
    engine_stats_sink,
    extract_variants,
    run_rules,
    rw,
)
from repro.ir import parse_expr
from repro.ir.printer import expr_to_sexpr
from repro.targets import get_target

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Small budget so equivalence tests cover several saturation iterations
#: (including truncation-driven full-search fallbacks) without CI cost.
SMALL = RunnerLimits(
    max_iterations=3, max_nodes=700, max_matches_per_rule=80, time_limit=5.0
)

KERNELS = [
    "(- (sqrt (+ x 1)) (sqrt x))",
    "(/ (sin x) (+ 1 (cos x)))",
    "(* (exp x) (exp y))",
    "(sqrt (+ (* x x) (* y y)))",
    "(exp (/ (- 0 (* x x)) (* 2 (* y y))))",
]


def _variants(source: str, incremental: bool, limits=SMALL) -> list[str]:
    target = get_target("c99")
    expr = parse_expr(source)
    egraph = EGraph()
    root = egraph.add_expr(expr)
    run_rules(egraph, _rules_for(target), limits, incremental=incremental)
    extractor = TypedExtractor(
        egraph, TargetCostModel(target),
        {name: "binary64" for name in expr.free_vars()},
    )
    return [
        expr_to_sexpr(v)
        for v in extract_variants(egraph, extractor, root, "binary64")
    ]


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("source", KERNELS)
    def test_full_and_incremental_extract_identically(self, source):
        assert _variants(source, True) == _variants(source, False)

    def test_identical_graphs_not_just_extractions(self):
        target = get_target("c99")
        expr = parse_expr(KERNELS[0])
        graphs = []
        for incremental in (False, True):
            egraph = EGraph()
            egraph.add_expr(expr)
            run_rules(egraph, _rules_for(target), SMALL, incremental=incremental)
            graphs.append(egraph)
        full, incr = graphs
        assert full.num_nodes == incr.num_nodes
        assert full.num_classes == incr.num_classes
        assert full.version == incr.version

    def test_deep_chain_match_at_unchanged_root(self):
        # The match of "outer" only becomes available after "inner" fires
        # in a *descendant* class (iteration 0 has no ``(+ _ 0)`` node at
        # all); the root's own sqrt node never changes, so finding the new
        # match in iteration 1 exercises the upward dirty closure.
        rules = [
            rw("inner", "(* a 1)", "(+ a 0)"),
            rw("outer", "(sqrt (+ q 0))", "(exp q)"),
        ]
        for incremental in (False, True):
            g = EGraph()
            root = g.add_expr(parse_expr("(sqrt (* x 1))"))
            run_rules(g, rules, RunnerLimits(max_iterations=6),
                      incremental=incremental)
            assert g.represents(root, parse_expr("(exp x)")), incremental
            assert g.represents(root, parse_expr("(sqrt (+ x 0))"))

    def test_escape_hatch_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EGRAPH_INCREMENTAL", "0")
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ x 0) 0)"))
        report = run_rules(g, [rw("id", "(+ a 0)", "a")])
        assert report.searches_incremental == 0
        assert report.searches_full >= 1
        monkeypatch.setenv("REPRO_EGRAPH_INCREMENTAL", "1")
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ x 0) 0)"))
        report = run_rules(g, [rw("id", "(+ a 0)", "a")])
        assert report.searches_incremental >= 1

    def test_conditional_rules_always_full_search(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ x 0) 0)"))
        rule = rw("id", "(+ a 0)", "a", condition=lambda eg, s: True)
        report = run_rules(g, [rule], incremental=True)
        assert report.searches_incremental == 0


class TestHashSeedDeterminism:
    def test_stable_under_pythonhashseed(self):
        script = (
            "from repro.egraph import EGraph, run_rules, RunnerLimits, "
            "TypedExtractor, extract_variants\n"
            "from repro.core.isel import _rules_for\n"
            "from repro.cost.model import TargetCostModel\n"
            "from repro.ir import parse_expr\n"
            "from repro.ir.printer import expr_to_sexpr\n"
            "t = get_target('c99')\n"
            "e = parse_expr('(- (sqrt (+ x 1)) (sqrt x))')\n"
            "g = EGraph(); root = g.add_expr(e)\n"
            "limits = RunnerLimits(max_iterations=3, max_nodes=500, "
            "max_matches_per_rule=60, time_limit=10.0)\n"
            "run_rules(g, _rules_for(t), limits)\n"
            "ex = TypedExtractor(g, TargetCostModel(t), {'x': 'binary64'})\n"
            "for v in extract_variants(g, ex, root, 'binary64'):\n"
            "    print(expr_to_sexpr(v))\n"
        )
        script = "from repro.targets import get_target\n" + script
        outputs = []
        for seed in ("0", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = SRC + os.pathsep * bool(
                env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip()
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]


def _random_egraph(seed: int) -> EGraph:
    """A randomized, rebuilt e-graph for extractor parity testing."""
    rng = random.Random(seed)
    g = EGraph()
    leaves = ["a", "b", "c", "0", "1", "2"]
    ops = [("+", 2), ("*", 2), ("-", 2), ("sqrt", 1), ("neg", 1)]
    ids = [g.add_expr(parse_expr(leaf)) for leaf in leaves]
    for _ in range(rng.randrange(10, 40)):
        op, arity = rng.choice(ops)
        args = tuple(rng.choice(ids) for _ in range(arity))
        ids.append(g.add_node(op, args))
    for _ in range(rng.randrange(0, 8)):
        g.union(rng.choice(ids), rng.choice(ids))
    g.rebuild()
    return g


def _reference_best(egraph, node_cost):
    """The seed engine's whole-graph fixpoint sweep (pre-worklist)."""
    best = {}
    changed = True
    while changed:
        changed = False
        for eclass in egraph.classes():
            cid = egraph.find(eclass.id)
            current = best.get(cid)
            for node in eclass.nodes:
                child_costs = []
                feasible = True
                for arg in node[1]:
                    entry = best.get(egraph.find(arg))
                    if entry is None:
                        feasible = False
                        break
                    child_costs.append(entry[0])
                if not feasible:
                    continue
                cost = node_cost(node[0], child_costs)
                if cost is None or cost == float("inf"):
                    continue
                if current is None or cost < current[0]:
                    current = (cost, node)
                    best[cid] = current
                    changed = True
    return best


def _reference_typed_best(egraph, model, var_types):
    """The seed TypedExtractor fixpoint (whole-graph sweeps)."""
    from repro.egraph.enode import is_op_head

    best = {}

    def options(node):
        head, args = node
        if is_op_head(head):
            signature = model.operator_signature(head)
            if signature is None:
                return
            arg_types, ret_type = signature
            if len(arg_types) != len(args):
                return
            total = model.operator_cost(head)
            for arg, arg_ty in zip(args, arg_types):
                entry = best.get(egraph.find(arg), {}).get(arg_ty)
                if entry is None:
                    return
                total += entry[0]
            yield ret_type, total, arg_types
            return
        tag = head[0]
        if tag == "var":
            ty = var_types.get(head[1])
            if ty is not None:
                yield ty, model.variable_cost(ty), ()
        elif tag in ("num", "const"):
            if tag == "const" and head[1] in ("TRUE", "FALSE", "NAN"):
                return
            for ty in model.literal_types():
                yield ty, model.literal_cost(ty), ()

    changed = True
    while changed:
        changed = False
        for eclass in egraph.classes():
            cid = egraph.find(eclass.id)
            table = best.setdefault(cid, {})
            for node in eclass.nodes:
                for ty, cost, arg_types in options(node):
                    current = table.get(ty)
                    if current is None or cost < current[0]:
                        table[ty] = (cost, node, arg_types)
                        changed = True
    return best


class TestWorklistExtractorParity:
    @pytest.mark.parametrize("seed", range(25))
    def test_untyped_costs_match_fixpoint(self, seed):
        g = _random_egraph(seed)
        from repro.egraph.extract import ast_size_cost

        reference = _reference_best(g, ast_size_cost)
        extractor = Extractor(g)
        for eclass in g.classes():
            cid = g.find(eclass.id)
            expected = reference.get(cid)
            got = extractor.cost_of(cid)
            if expected is None:
                assert got is None
            else:
                assert got == expected[0]
                # The extracted expression must realize the best cost and
                # actually be represented by the class.
                expr = extractor.extract(cid)
                assert expr.size() == expected[0]
                assert g.represents(cid, expr)

    @pytest.mark.parametrize("seed", range(10))
    def test_typed_costs_match_fixpoint(self, seed):
        g = _random_egraph(seed)
        model = TargetCostModel(get_target("c99"))
        var_types = {"a": "binary64", "b": "binary64", "c": "binary64"}
        reference = _reference_typed_best(g, model, var_types)
        extractor = TypedExtractor(g, model, var_types)
        for eclass in g.classes():
            cid = g.find(eclass.id)
            expected = {
                ty: entry[0] for ty, entry in reference.get(cid, {}).items()
            }
            got = {
                ty: extractor.cost_of(cid, ty)
                for ty in extractor.available_types(cid)
            }
            assert got == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_num_nodes_accounting(self, seed):
        g = _random_egraph(seed)
        assert g.num_nodes == sum(len(c.nodes) for c in g.classes())

    @pytest.mark.parametrize("seed", range(10))
    def test_head_index_matches_scan(self, seed):
        g = _random_egraph(seed)
        for op in ("+", "*", "sqrt", "neg", "-"):
            indexed = set(g.classes_with_head(op))
            scanned = {
                g.find(eclass.id)
                for eclass in g.classes()
                if any(node[0] == op for node in eclass.nodes)
            }
            assert indexed == scanned

    def test_snapshot_reused_across_cost_functions(self):
        g = _random_egraph(3)
        first = Extractor(g)
        second = first.reuse(lambda head, costs: 2.0 + sum(costs))
        assert first.snapshot is second.snapshot
        g.add_expr(parse_expr("(+ a (* b c))"))
        third = Extractor(g)
        assert third.snapshot is not first.snapshot


class TestRunnerSatellites:
    def test_search_phase_polls_deadline(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ a b) (+ c d))"))
        rules = [
            rw("comm", "(+ a b)", "(+ b a)"),
            rw("grow", "(+ a b)", "(+ (* a a) b)"),
        ]
        with pytest.raises(DeadlineExceeded):
            with deadline(0.0001):
                import time

                time.sleep(0.001)
                run_rules(g, rules, RunnerLimits(max_iterations=50,
                                                 max_nodes=10**6))

    def test_apply_phase_respects_time_limit(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ a b) (+ c d))"))
        rules = [rw("grow", "(+ a b)", "(+ (* a a) b)")]
        report = run_rules(
            g, rules,
            RunnerLimits(max_iterations=10**6, max_nodes=10**9,
                         max_matches_per_rule=10**6, time_limit=0.2),
        )
        assert report.stop_reason == "time-limit"

    def test_truncation_reported(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))"))
        rules = [rw("comm", "(+ a b)", "(+ b a)")]
        report = run_rules(
            g, rules,
            RunnerLimits(max_iterations=1, max_matches_per_rule=3),
        )
        assert report.rules_truncated.get("comm", 0) >= 1
        assert report.matches_found == 3

    def test_no_truncation_not_reported(self):
        g = EGraph()
        g.add_expr(parse_expr("(+ x 0)"))
        report = run_rules(g, [rw("id", "(+ a 0)", "a")])
        assert report.rules_truncated == {}


class TestExtractionError:
    def test_carries_class_and_cost_name(self):
        g = EGraph()
        x = g.add_expr(parse_expr("x"))
        root = g.add_node("myop", (x,))
        extractor = Extractor(
            g, lambda head, costs: float("inf") if head == "myop"
            else 1.0 + sum(costs)
        )
        with pytest.raises(ExtractionError) as excinfo:
            extractor.extract(root)
        assert excinfo.value.class_id == g.find(root)
        assert "<lambda>" in excinfo.value.cost_name
        assert str(excinfo.value).startswith("e-class")
        # Still a KeyError for pre-v2 handlers.
        assert isinstance(excinfo.value, KeyError)

    def test_typed_extraction_error_carries_type(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ x y)"))
        extractor = TypedExtractor(
            g, TargetCostModel(get_target("c99")), {}
        )  # no var types: nothing is extractable
        with pytest.raises(ExtractionError) as excinfo:
            extractor.extract(root, "binary64")
        assert excinfo.value.ty == "binary64"
        assert excinfo.value.class_id == g.find(root)

    def test_isel_skips_unextractable_candidates(self):
        # A candidate whose *grandchild* class turns out unextractable
        # passes multi-extraction's direct-arg feasibility pre-check but
        # raises ExtractionError during node_to_expr; it must be skipped
        # as one lost candidate, not crash the whole variant set.
        target = get_target("c99")
        g = EGraph()
        root = g.add_expr(parse_expr("(+ (* x y) z)"))
        run_rules(g, _rules_for(target), SMALL)
        types = {"x": "binary64", "y": "binary64", "z": "binary64"}
        extractor = TypedExtractor(g, TargetCostModel(target), types)
        baseline = extract_variants(g, extractor, root, "binary64")
        assert baseline
        x_class = g.find(g.lookup_expr(parse_expr("x")))
        extractor.best[x_class] = {}  # simulate an unextractable child
        degraded = extract_variants(g, extractor, root, "binary64")
        assert len(degraded) < len(baseline)


class TestSaturationCache:
    def test_hit_on_repeated_subexpression(self):
        target = get_target("c99")
        cache = SaturationCache()
        expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))")
        limits = SMALL
        first = instruction_select(
            expr, target, var_types={"x": "binary64"}, limits=limits,
            cache=cache,
        )
        second = instruction_select(
            expr, target, var_types={"x": "binary64"}, limits=limits,
            cache=cache,
        )
        assert cache.hits == 1 and cache.misses == 1
        assert [expr_to_sexpr(v) for v in first] == [
            expr_to_sexpr(v) for v in second
        ]

    def test_cached_matches_uncached(self):
        target = get_target("c99")
        cache = SaturationCache()
        expr = parse_expr("(* (exp x) (exp y))")
        kwargs = dict(
            var_types={"x": "binary64", "y": "binary64"}, limits=SMALL
        )
        cached = instruction_select(expr, target, cache=cache, **kwargs)
        uncached = instruction_select(expr, target, **kwargs)
        assert [expr_to_sexpr(v) for v in cached] == [
            expr_to_sexpr(v) for v in uncached
        ]

    def test_distinct_limits_distinct_entries(self):
        target = get_target("c99")
        cache = SaturationCache()
        expr = parse_expr("(+ x 0)")
        other = RunnerLimits(max_iterations=2, max_nodes=600,
                             max_matches_per_rule=80, time_limit=5.0)
        instruction_select(expr, target, limits=SMALL, cache=cache)
        instruction_select(expr, target, limits=other, cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_loop_counts_saturation_hits(self):
        from repro.core.loop import ImprovementLoop

        # A program whose two halves are the same subexpression: the
        # second localization path must hit the saturation cache.
        from repro.accuracy.sampler import SampleConfig, sample_core
        from repro.core.loop import CompileConfig
        from repro.ir.fpcore import parse_fpcore

        core = parse_fpcore(
            "(FPCore (x) :pre (< 0.1 x 10) "
            "(+ (sqrt (+ x 1)) (sqrt (+ x 1))))"
        )
        target = get_target("c99")
        samples = sample_core(core, SampleConfig(n_train=8, n_test=8))
        config = CompileConfig(
            iterations=1, localize_points=4,
            isel_limits=RunnerLimits(max_iterations=2, max_nodes=400,
                                     max_matches_per_rule=60,
                                     time_limit=5.0),
        )
        loop = ImprovementLoop(core, target, samples, config)
        loop.run(with_regimes=False)
        assert loop.saturation_hits + loop._saturations.misses > 0


class TestEngineStats:
    def test_sink_collects_run_counters(self):
        stats = EngineStats()
        with engine_stats_sink(stats):
            g = EGraph()
            g.add_expr(parse_expr("(+ (+ x 0) 0)"))
            run_rules(g, [rw("id", "(+ a 0)", "a")])
        assert stats.saturations == 1
        assert stats.matches_applied >= 2
        assert stats.enodes_built >= 0
        assert stats.any()

    def test_sink_restored_after_region(self):
        from repro.egraph import current_sink

        stats = EngineStats()
        assert current_sink() is None
        with engine_stats_sink(stats):
            assert current_sink() is stats
        assert current_sink() is None

    def test_merge_and_delta(self):
        from repro.egraph import stats_delta

        a = EngineStats(enodes_built=5, rules_truncated={"x": 1})
        b = EngineStats(enodes_built=2, rules_truncated={"x": 2, "y": 1})
        a.merge(b)
        assert a.enodes_built == 7
        assert a.rules_truncated == {"x": 3, "y": 1}
        delta = stats_delta(a.as_dict(), b.as_dict())
        assert delta["enodes_built"] == 5
        # Zero entries are dropped from dict-valued deltas.
        assert delta["rules_truncated"] == {"x": 1}

    def test_session_surfaces_engine_counters(self):
        from repro.accuracy.sampler import SampleConfig
        from repro.core.loop import CompileConfig
        from repro.session import ChassisSession

        session = ChassisSession(
            config=CompileConfig(
                iterations=1, localize_points=4,
                isel_limits=RunnerLimits(max_iterations=2, max_nodes=400,
                                         max_matches_per_rule=60,
                                         time_limit=5.0),
            ),
            sample_config=SampleConfig(n_train=8, n_test=8),
        )
        session.compile(
            "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))",
            "c99",
        )
        engine = session.stats.as_dict()["engine"]
        assert engine["enodes_built"] > 0
        assert engine["saturations"] > 0
        assert engine["matches_applied"] > 0
