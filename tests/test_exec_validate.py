"""Tests for the empirical validation stack above the backends: session
``execute``/``validate`` (with caching), timing, calibration, the ``repro
run`` / ``repro validate`` CLI commands, ``repro targets --json``
capability metadata, and the serve ``/validate`` endpoint.

Everything here must pass both with and without a system C compiler (CI
runs both legs); C-specific assertions are conditioned on discovery.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.accuracy.sampler import SampleConfig
from repro.api import ChassisSession, CompileConfig, create_server
from repro.benchsuite import suite
from repro.cli import main
from repro.exec import (
    CalibrationPoint,
    affine_fit,
    c_backend_available,
    calibrate,
    collect_calibration,
    measure_executable,
)
from repro.ir.fpcore import parse_fpcore

HAVE_CC = c_backend_available()

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)
SRC = "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    session = ChassisSession(
        config=FAST,
        sample_config=SAMPLES,
        cache=str(tmp_path_factory.mktemp("exec-cache")),
    )
    yield session
    session.close()


# --- session integration -------------------------------------------------------------


class TestSessionExecute:
    def test_execute_runs_emitted_code_over_test_points(self, session):
        run = session.execute(SRC, "c99")
        assert len(run.outputs) == 8
        assert all(isinstance(v, float) for v in run.outputs)
        assert run.backend == ("c" if HAVE_CC else "python")
        assert session.stats.executions >= 1

    def test_execute_explicit_program(self, session):
        run = session.execute(SRC, "c99", program="(add.f64 x 1)")
        samples = session.samples_for(session.parse(SRC))
        expected = [point["x"] + 1.0 for point in samples.test]
        assert run.outputs == expected

    def test_validate_agrees_and_is_cached(self, session):
        before = session.stats.validations
        report = session.validate(SRC, "c99")
        assert report.agreement_bits <= 0.5
        assert report.ok
        assert session.stats.validations == before + 1
        hits_before = session.stats.validation_hits
        again = session.validate(SRC, "c99")
        assert again is report  # served from the session's report LRU
        assert session.stats.validation_hits == hits_before + 1

    def test_validate_python_backend_forced(self, session):
        report = session.validate(SRC, "c99", backend="python")
        assert report.backend == "python"
        assert report.agreement_bits <= 0.5

    def test_build_cache_lives_next_to_compile_cache(self, session):
        if not HAVE_CC:
            pytest.skip("no C compiler on PATH")
        session.execute(SRC, "c99")  # ensures at least one build happened
        build_root = session.build_cache().root
        assert build_root == session.cache.root / "builds"
        assert len(session.build_cache()) >= 1

    def test_executable_lru_reuses_loaded_code(self, session):
        first = session.executable(SRC, "c99", program="(add.f64 x 1)")
        second = session.executable(SRC, "c99", program="(add.f64 x 1)")
        assert first is second


def test_validate_dispatches_compiles_through_worker_pool():
    """With ``jobs >= 2`` the compilation feeding a validation runs on the
    session's persistent worker pool (real process-level parallelism for
    concurrent ``/validate`` requests), not inline."""
    with ChassisSession(config=FAST, sample_config=SAMPLES, jobs=2) as session:
        report = session.validate(SRC, "c99")
        assert report.agreement_bits <= 0.5
        pool = session.worker_pool()
        assert pool is not None and pool.generation >= 1


def test_validate_agreement_across_benchsuite_cores():
    """The acceptance bar: for >= 10 benchsuite cores, the empirically
    executed best output scores within 0.5 bits of the machine score."""
    with ChassisSession(config=FAST, sample_config=SAMPLES) as session:
        validated = 0
        for core in suite(max_benchmarks=12):
            try:
                report = session.validate(core, "c99")
            except Exception:
                continue  # infeasible pair: the removal protocol
            assert report.agreement_bits <= 0.5, report.as_dict()
            if HAVE_CC:
                assert report.backend == "c"
            validated += 1
        assert validated >= 10


# --- timing --------------------------------------------------------------------------


class TestTiming:
    def test_measure_reports_positive_cost(self, session):
        executable = session.executable(SRC, "c99", program="(add.f64 x 1)")
        samples = session.samples_for(session.parse(SRC))
        report = measure_executable(executable, samples.test, repeats=3)
        assert report.repeats == 3
        assert len(report.per_repeat_ns) == 3
        assert report.median_ns > 0
        assert report.min_ns <= report.median_ns <= report.mean_ns * 3
        payload = report.as_dict()
        assert payload["n_points"] == len(samples.test)
        assert payload["inner"] >= 1

    def test_measure_requires_points(self, session):
        executable = session.executable(SRC, "c99", program="(add.f64 x 1)")
        with pytest.raises(ValueError):
            measure_executable(executable, [])


# --- calibration ---------------------------------------------------------------------


class TestCalibration:
    def test_affine_fit_recovers_known_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.0 * x + 5.0 for x in xs]
        scale, offset = affine_fit(xs, ys)
        assert abs(scale - 2.0) < 1e-9 and abs(offset - 5.0) < 1e-9

    def test_reports_serialize_to_strict_json(self):
        # Executed values are routinely NaN (the run guard totalizes
        # emitted-code exceptions); the wire format must stay RFC 8259.
        from repro.exec.executable import ExecutionRun
        from repro.exec.validate import PointMismatch

        mismatch = PointMismatch(
            index=0, point={"x": 1.0}, exact=1.0,
            executed=float("nan"), machine=float("inf"),
            ulps=1 << 62, executed_bits=64.0, machine_bits=64.0,
        )
        text = json.dumps(mismatch.as_dict())
        assert "NaN" not in text and "Infinity" not in text
        assert json.loads(text)["executed"] == "nan"
        run = ExecutionRun(
            "b", "c99", "python", "python", "f", [float("nan"), 1.0]
        )
        text = json.dumps(run.as_dict())
        assert "NaN" not in text
        assert json.loads(text)["outputs"] == ["nan", 1.0]

    def test_calibrate_report_shape_and_roundtrip(self):
        points = [
            CalibrationPoint("b1", "(add.f64 x 1)", 10.0, 25.0, ("add.f64",)),
            CalibrationPoint("b2", "(mul.f64 x x)", 20.0, 45.0, ("mul.f64",)),
            CalibrationPoint(
                "b3", "(sqrt.f64 x)", 30.0, 66.0, ("sqrt.f64",)
            ),
        ]
        report = calibrate(points, "c99", "c")
        assert report.n_programs == 3
        assert report.correlation > 0.99
        assert set(report.operator_residuals) == {
            "add.f64", "mul.f64", "sqrt.f64"
        }
        # rescale() maps predictions onto the measured scale.
        assert abs(report.rescale(20.0) - 45.0) < 2.0
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["target"] == "c99" and len(payload["points"]) == 3

    def test_collect_calibration_end_to_end(self, session):
        core = parse_fpcore(SRC)
        report = collect_calibration(
            session, [core], "c99", repeats=2, programs_per_core=1
        )
        assert report.target == "c99"
        assert report.n_programs >= 1
        assert all(p.measured_ns > 0 for p in report.points)
        assert all(p.predicted_ns > 0 for p in report.points)


# --- CLI -----------------------------------------------------------------------------


class TestCli:
    ARGS = ["--points", "8", "--iterations", "1"]

    def test_validate_command(self, capsys, tmp_path):
        status = main(
            ["validate", "--target", "c99", "--cache-dir", str(tmp_path)]
            + self.ARGS + ["sqrt-sub"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "agree" in out
        backend = "c" if HAVE_CC else "python"
        assert f"[{backend} backend]" in out
        if not HAVE_CC:
            assert "no C compiler" in out

    def test_validate_json(self, capsys):
        status = main(
            ["validate", "--target", "c99", "--json"] + self.ARGS + ["sqrt-sub"]
        )
        assert status == 0
        row = json.loads(capsys.readouterr().out)
        assert row["benchmark"] == "sqrt-sub"
        assert row["agreement_bits"] <= 0.5
        assert row["ok"] is True

    def test_run_command(self, capsys):
        status = main(
            ["run", "--target", "c99", "--show", "2"] + self.ARGS + ["sqrt-sub"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "executed sqrt_sub" in out
        assert "exact" in out

    def test_run_python_backend_forced(self, capsys):
        status = main(
            ["run", "--target", "c99", "--backend", "python"]
            + self.ARGS + ["sqrt-sub"]
        )
        assert status == 0
        assert "[python backend]" in capsys.readouterr().out

    def test_targets_json_capabilities(self, capsys):
        assert main(["targets", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in payload["targets"]}
        assert by_name["c99"]["capabilities"]["backends"]["c"] == HAVE_CC
        assert by_name["python"]["capabilities"]["backends"]["c"] is False
        assert by_name["python"]["capabilities"]["backends"]["python"] is True
        assert by_name["julia"]["capabilities"]["languages"][0] == "julia"

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["validate", "--target", "c99", "no-such-benchmark-xyz"])


# --- the /validate endpoint ----------------------------------------------------------


@pytest.fixture(scope="module")
def validate_server(tmp_path_factory):
    session = ChassisSession(
        config=FAST,
        sample_config=SAMPLES,
        cache=str(tmp_path_factory.mktemp("serve-validate-cache")),
    )
    server = create_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _post(url, obj):
    request = urllib.request.Request(
        url, data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestValidateEndpoint:
    def test_validate_roundtrip(self, validate_server):
        status, payload = _post(
            validate_server + "/validate", {"core": SRC, "target": "c99"}
        )
        assert status == 200
        assert payload["status"] == "ok"
        report = payload["report"]
        assert report["agreement_bits"] <= 0.5
        assert report["backend"] == ("c" if HAVE_CC else "python")
        assert report["n_points"] == 8
        if not HAVE_CC:
            assert "no C compiler" in report["note"]

    def test_validate_explicit_program_and_backend(self, validate_server):
        status, payload = _post(
            validate_server + "/validate",
            {
                "core": SRC,
                "target": "c99",
                "program": "(add.f64 x 1)",
                "backend": "python",
            },
        )
        assert status == 200
        assert payload["report"]["backend"] == "python"

    def test_bad_backend_is_a_400(self, validate_server):
        status, payload = _post(
            validate_server + "/validate",
            {"core": SRC, "target": "c99", "backend": "fortran"},
        )
        assert status == 400
        assert "backend" in payload["error"]

    def test_bad_program_is_a_400(self, validate_server):
        status, payload = _post(
            validate_server + "/validate",
            {"core": SRC, "target": "c99", "program": "(((("},
        )
        assert status == 400

    def test_infeasible_pair_is_failed_data(self, validate_server):
        bad = "(FPCore nopoints (x) :pre (and (< 2 x) (< x 1)) x)"
        status, payload = _post(
            validate_server + "/validate", {"core": bad, "target": "c99"}
        )
        assert status == 200
        assert payload["status"] == "failed"
        assert payload["error_type"] == "SamplingError"

    def test_health_reports_validation_stats(self, validate_server):
        with urllib.request.urlopen(
            validate_server + "/health", timeout=60
        ) as response:
            payload = json.loads(response.read())
        assert "validations" in payload["stats"]

    def test_targets_endpoint_carries_capabilities(self, validate_server):
        with urllib.request.urlopen(
            validate_server + "/targets", timeout=60
        ) as response:
            payload = json.loads(response.read())
        caps = {t["name"]: t["capabilities"] for t in payload["targets"]}
        assert caps["c99"]["backends"]["python"] is True
        assert caps["c99"]["backends"]["c"] == HAVE_CC
