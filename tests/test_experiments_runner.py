"""Small end-to-end runs of the experiment harness (scaled-down figures)."""

import math

import pytest

from repro.accuracy import SampleConfig
from repro.benchsuite import core_named
from repro.core import CompileConfig
from repro.experiments import (
    ExperimentConfig,
    clang_report,
    correlation,
    cost_model_report,
    herbie_relative_report,
    herbie_report,
    run_clang_comparison,
    run_cost_model_study,
    run_herbie_comparison,
)
from repro.targets import get_target

TINY = ExperimentConfig(
    CompileConfig(iterations=1, localize_points=6, max_variants=12),
    SampleConfig(n_train=16, n_test=16),
)

CORES = [core_named("sqrt-sub"), core_named("logistic")]


@pytest.fixture(scope="module")
def clang_results(c99):
    return run_clang_comparison(CORES, c99, TINY)


@pytest.fixture(scope="module")
def herbie_results(c99, vdt):
    return run_herbie_comparison(CORES, [c99, vdt], TINY)


class TestClangComparison:
    def test_produces_rows(self, clang_results):
        assert len(clang_results) >= 1

    def test_twelve_configs_each(self, clang_results):
        for row in clang_results:
            assert len(row.clang) == 12

    def test_o0_speedup_is_one(self, clang_results):
        for row in clang_results:
            assert row.clang["-O0"][0] == pytest.approx(1.0)

    def test_chassis_beats_clang_somewhere(self, clang_results):
        """The paper's headline: Chassis dominates the Clang curve."""
        for row in clang_results:
            best_chassis = max(s for s, _a in row.chassis)
            best_clang = max(s for s, _a in row.clang.values())
            assert best_chassis >= best_clang * 0.9  # usually far above

    def test_report_renders(self, clang_results):
        text = clang_report(clang_results)
        assert "Figure 7" in text and "-ffast-math" in text


class TestHerbieComparison:
    def test_produces_rows(self, herbie_results):
        assert len(herbie_results) >= 2

    def test_entries_have_positive_speedups(self, herbie_results):
        for row in herbie_results:
            assert all(s > 0 for s, _a in row.chassis)
            assert all(s > 0 for s, _a in row.herbie)

    def test_discard_rule_applied(self, herbie_results):
        """Chassis outputs more accurate than Herbie's best are discarded."""
        for row in herbie_results:
            herbie_best = max(a for _s, a in row.herbie)
            for _s, accuracy in row.chassis:
                assert accuracy <= herbie_best + 0.5 + 1e-9

    def test_reports_render(self, herbie_results):
        assert "Figure 8" in herbie_report(herbie_results)
        assert "Figure 9" in herbie_relative_report(herbie_results)


class TestCostModelStudy:
    def test_positive_correlation(self, c99, python_target):
        points = run_cost_model_study(CORES, [c99, python_target], TINY)
        assert len(points) >= 4
        r = correlation(points)
        assert r > 0.3  # the paper reports moderate-to-strong correlation

    def test_report_renders(self, c99):
        points = run_cost_model_study(CORES[:1], [c99], TINY)
        assert "Figure 10" in cost_model_report(points)
