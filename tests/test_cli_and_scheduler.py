"""Tests for the command-line interface and the backoff scheduler."""

import pytest

from repro.cli import main
from repro.egraph import BackoffScheduler, EGraph, RunnerLimits, run_rules, rw
from repro.ir import parse_expr


class TestBackoffScheduler:
    def test_allows_by_default(self):
        s = BackoffScheduler()
        assert s.can_fire("any", 0)

    def test_bans_explosive_rule(self):
        s = BackoffScheduler(match_limit=10, ban_length=3)
        assert not s.record_matches("boom", 50, iteration=0)
        assert not s.can_fire("boom", 1)
        assert not s.can_fire("boom", 2)
        assert s.can_fire("boom", 4)

    def test_ban_length_doubles(self):
        s = BackoffScheduler(match_limit=10, ban_length=2)
        s.record_matches("boom", 50, 0)   # banned until 2
        assert s.can_fire("boom", 2)
        s.record_matches("boom", 50, 2)   # threshold now 20, still over: ban 4
        assert not s.can_fire("boom", 5)
        assert s.can_fire("boom", 6)

    def test_quiet_rule_never_banned(self):
        s = BackoffScheduler(match_limit=10)
        for i in range(20):
            assert s.record_matches("calm", 3, i)

    def test_runner_integration(self):
        g = EGraph()
        root = g.add_expr(parse_expr("(+ (+ x 0) 0)"))
        rules = [
            rw("id", "(+ a 0)", "a"),
            rw("comm", "(+ a b)", "(+ b a)"),
        ]
        report = run_rules(
            g, rules, RunnerLimits(max_iterations=6),
            scheduler=BackoffScheduler(match_limit=1, ban_length=1),
        )
        # Still converges to x despite the scheduler throttling comm.
        assert g.same(root, g.lookup_expr(parse_expr("x")))


class TestCLI:
    def test_targets_command(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "avx" in out and "fdlibm" in out

    def test_compile_builtin_benchmark(self, capsys):
        code = main([
            "compile", "acoth", "--target", "fdlibm",
            "--iterations", "1", "--points", "12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "input" in out and "output" in out

    def test_compile_from_file(self, tmp_path, capsys):
        src = tmp_path / "bench.fpcore"
        src.write_text(
            "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"
        )
        assert main([
            "compile", str(src), "--target", "c99",
            "--iterations", "1", "--points", "12", "--infix",
        ]) == 0
        out = capsys.readouterr().out
        assert "cost=" in out

    def test_compile_code_emission(self, capsys):
        assert main([
            "compile", "midpoint", "--target", "c99",
            "--iterations", "1", "--points", "8", "--code",
        ]) == 0
        assert "#include <math.h>" in capsys.readouterr().out

    def test_sample_command(self, capsys):
        assert main(["sample", "acoth", "--points", "8"]) == 0
        assert "acceptance" in capsys.readouterr().out

    def test_score_command(self, capsys):
        assert main(["score", "sqrt-sub", "--target", "c99", "--points", "16"]) == 0
        assert "bits of error" in capsys.readouterr().out

    def test_missing_input_fails(self):
        with pytest.raises(SystemExit):
            main(["compile", "/nonexistent/file.fpcore"])

    def test_compile_with_target_file(self, tmp_path, capsys):
        target_src = tmp_path / "mini.tgt"
        target_src.write_text(
            """
            (define-operator (mul.f64 [a binary64] [b binary64]) binary64
              #:approx (* a b) #:link mul64 #:cost 3)
            (define-operator (add.f64 [a binary64] [b binary64]) binary64
              #:approx (+ a b) #:link add64 #:cost 3)
            (define-target mini
              #:literals ([binary64 1])
              #:operators (mul.f64 add.f64))
            """
        )
        bench = tmp_path / "bench.fpcore"
        bench.write_text("(FPCore f (x) :pre (< 0.1 x 10) (* x (+ x 1)))")
        assert main([
            "compile", str(bench), "--target-file", str(target_src),
            "--iterations", "1", "--points", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "on mini" in out
