"""Integration tests: the paper's section 6.4 case studies.

These verify the *qualitative* claims: Chassis finds the target-specific
operators the paper highlights (fma variants and rcp on AVX, degree-based
trigonometry on Julia, log1pmd on fdlibm).
"""

import pytest

from repro.accuracy import SampleConfig
from repro.benchsuite import core_named
from repro.core import CompileConfig, compile_fpcore
from repro.core.isel import instruction_select
from repro.ir import F32, F64, expr_to_sexpr, parse_expr

CONFIG = CompileConfig(iterations=2, localize_points=8, max_variants=25)
SAMPLES = SampleConfig(n_train=24, n_test=24)


class TestQuadraticOnAVX:
    def test_fma_variants_appear(self, avx):
        """Paper: 'leverages the many fma variants available'."""
        core = core_named("quadratic-mod")
        result = compile_fpcore(core, avx, CONFIG, SAMPLES)
        programs = " ".join(str(c.program) for c in result.frontier)
        assert "fma" in programs or "fnma" in programs or "fms" in programs

    def test_rcp_in_single_precision(self, avx):
        """Paper: 'in single-precision, Chassis can also use rcpss'."""
        prog = parse_expr("(/ x y)")
        variants = instruction_select(prog, avx, ty=F32)
        assert any("rcp.f32" in expr_to_sexpr(v) for v in variants)

    def test_double_precision_has_no_rcp(self, avx):
        prog = parse_expr("(/ x y)")
        variants = instruction_select(prog, avx, ty=F64, max_variants=60)
        for variant in variants:
            # rcp exists only at f32; f64 programs may reach it only via casts
            if "rcp.f32" in expr_to_sexpr(variant):
                assert "cast" in expr_to_sexpr(variant)


class TestEllipseOnJulia:
    def test_sind_cosd_found(self, julia):
        """Paper: Chassis uses Julia's degree-based trig helpers."""
        sub = parse_expr("(sin (* (/ PI 180) theta))")
        variants = instruction_select(sub, julia, ty=F64)
        assert any("sind.f64" in expr_to_sexpr(v) for v in variants)

    def test_full_compile_improves_accuracy(self, julia):
        core = core_named("ellipse-angle")
        result = compile_fpcore(core, julia, CONFIG, SAMPLES)
        assert result.frontier.best_error().error <= result.input_candidate.error
        programs = " ".join(str(c.program) for c in result.frontier)
        # some helper (sind/cosd/deg2rad/abs2) should surface
        assert any(h in programs for h in ("sind", "cosd", "deg2rad", "abs2"))


class TestAcothOnFdlibm:
    def test_log1pmd_variant_found(self, fdlibm):
        """Paper: Chassis implements acoth as log1pmd(x) * 0.5."""
        prog = parse_expr("(* 1/2 (log (/ (+ 1 x) (- 1 x))))")
        variants = instruction_select(prog, fdlibm, ty=F64)
        rendered = [expr_to_sexpr(v) for v in variants]
        assert any("log1pmd.f64" in r for r in rendered)
        # the exact shape from the paper
        assert any(
            r in ("(mul.f64 (log1pmd.f64 x) 0.5)", "(mul.f64 0.5 (log1pmd.f64 x))")
            for r in rendered
        )

    def test_log1pmd_cheaper_than_two_logs(self, fdlibm):
        from repro.cost import TargetCostModel

        model = TargetCostModel(fdlibm)
        ops = set(fdlibm.operators)
        paper = parse_expr("(mul.f64 (log1pmd.f64 x) 0.5)", known_ops=ops)
        herbie_style = parse_expr(
            "(mul.f64 0.5 (sub.f64 (log1p.f64 x) (log1p.f64 (neg.f64 x))))",
            known_ops=ops,
        )
        assert model.program_cost(paper) < model.program_cost(herbie_style)

    def test_full_compile_uses_library_internal(self, fdlibm):
        core = core_named("acoth")
        result = compile_fpcore(core, fdlibm, CONFIG, SAMPLES)
        assert result.frontier.best_error().error < result.input_candidate.error
