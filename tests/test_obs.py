"""Tests for the observability subsystem (:mod:`repro.obs`): span traces,
the metrics registry, the instrumented compile path, and the server's
``/metrics`` + timings surfaces."""

import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.accuracy.sampler import SampleConfig
from repro.api import ChassisSession, CompileConfig, create_server
from repro.cli import main
from repro.ir import parse_fpcore
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import (
    Trace,
    chrome_trace,
    span,
    trace_from_dict,
    tracing,
    write_chrome_trace,
)
from repro.targets import get_target

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)

SRC = "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"
SRC2 = "(FPCore g (x) :pre (< 0.1 x 1) (+ (* x x) 1))"


class TestSpans:
    def test_nesting_attrs_and_parent_links(self):
        trace = Trace(name="t")
        with tracing(trace):
            with span("outer", a=1) as outer:
                with span("inner"):
                    pass
                outer["attrs"]["b"] = 2
        assert trace.span_names() == ["outer", "inner"]
        outer_rec, inner_rec = trace.spans
        assert outer_rec["parent"] is None and inner_rec["parent"] == 0
        assert outer_rec["attrs"] == {"a": 1, "b": 2}
        assert inner_rec["start"] >= outer_rec["start"]
        assert outer_rec["dur"] >= inner_rec["dur"] >= 0.0

    def test_span_without_tracer_yields_none(self):
        with span("x", a=1) as record:
            assert record is None

    def test_rearming_shadows_and_restores(self):
        t1, t2 = Trace(), Trace()
        with tracing(t1):
            with span("a"):
                pass
            with tracing(t2):
                with span("b"):
                    pass
            with span("c"):
                pass
        assert t1.span_names() == ["a", "c"]
        assert t2.span_names() == ["b"]

    def test_trace_round_trips_through_dict(self):
        trace = Trace(name="job", pid=4242)
        with tracing(trace):
            with span("compile", target="c99"):
                pass
        back = trace_from_dict(trace.as_dict())
        assert back.name == "job" and back.pid == 4242
        assert back.spans == trace.spans
        assert back.epoch_wall == trace.epoch_wall

    def test_phase_seconds_sums_only_phase_spans(self):
        trace = Trace()
        trace.spans = [
            {"name": "compile", "start": 0, "dur": 9.0, "parent": None, "attrs": {}},
            {"name": "phase.improve", "start": 0, "dur": 2.0, "parent": 0, "attrs": {}},
            {"name": "phase.improve", "start": 2, "dur": 1.0, "parent": 0, "attrs": {}},
            {"name": "phase.score", "start": 3, "dur": 0.5, "parent": 0, "attrs": {}},
        ]
        assert trace.phase_seconds() == {"improve": 3.0, "score": 0.5}

    def test_disabled_tracer_is_near_zero_cost(self):
        # The permanent-instrumentation contract: with no tracer armed a
        # span() entry is one thread-local read.  20k disabled entries
        # must finish in well under a second even on a loaded CI box.
        assert threading.current_thread()  # warm imports outside the clock
        start = time.perf_counter()
        for _ in range(20_000):
            with span("x"):
                pass
        assert time.perf_counter() - start < 1.0


class TestChromeTrace:
    def test_merges_processes_onto_one_absolute_timeline(self):
        t1 = Trace(name="a", pid=111)
        t1.epoch_wall = 1000.0
        t1.spans = [
            {"name": "compile", "start": 0.5, "dur": 1.0, "parent": None,
             "attrs": {"k": "v"}},
        ]
        t2 = Trace(name="b", pid=222)
        t2.epoch_wall = 1001.0
        t2.spans = [
            {"name": "compile", "start": 0.0, "dur": 0.5, "parent": None,
             "attrs": {}},
        ]
        payload = chrome_trace([t1, t2.as_dict()])  # Trace and dict both ok
        events = payload["traceEvents"]
        assert len(events) == 2
        assert all(event["ph"] == "X" and event["cat"] == "repro"
                   for event in events)
        by_pid = {event["pid"]: event for event in events}
        # absolute starts are 1000.5 and 1001.0 -> normalized to 0 and 0.5s
        assert by_pid[111]["ts"] == 0.0
        assert by_pid[222]["ts"] == pytest.approx(0.5e6)
        assert by_pid[111]["dur"] == pytest.approx(1e6)
        assert by_pid[111]["args"] == {"k": "v", "job": "a"}

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        trace = Trace(name="x")
        with tracing(trace):
            with span("compile"):
                with span("phase.improve"):
                    pass
        path = tmp_path / "t.json"
        count = write_chrome_trace(path, [trace])
        data = json.loads(path.read_text())
        assert count == len(data["traceEvents"]) == 2
        assert data["displayTimeUnit"] == "ms"


_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.e+-]+|\+Inf)$"
)


def assert_valid_exposition(text: str) -> None:
    """Structural checks for the Prometheus text format (version 0.0.4)."""
    assert text.endswith("\n")
    buckets: dict[str, list[int]] = {}
    for line in text.splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
            continue
        assert _SAMPLE_LINE.match(line), line
        if "_bucket{" in line:
            # one child per (family, non-le labels): le is rendered last
            child = line.split('le="', 1)[0]
            buckets.setdefault(child, []).append(int(line.rsplit(" ", 1)[1]))
    for child, counts in buckets.items():
        assert counts == sorted(counts), f"{child} buckets not cumulative"


class TestMetricsRegistry:
    def test_counter_children_cached_per_label_set(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("t_total", "Things.", outcome="ok").inc()
        reg.counter("t_total", outcome="ok").inc(2)
        reg.counter("t_total", outcome="bad").inc()
        text = reg.exposition()
        assert "# HELP t_total Things." in text
        assert "# TYPE t_total counter" in text
        assert 't_total{outcome="bad"} 1' in text
        assert 't_total{outcome="ok"} 3' in text
        assert_valid_exposition(text)

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = reg.exposition()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text
        assert_valid_exposition(text)

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("n_total")
        counter.inc()
        hist = reg.histogram("h_seconds")
        hist.observe(1.0)
        assert counter.value == 0 and hist.count == 0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.histogram("x_total")

    def test_gauge_reregistration_replaces_the_callable(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge_fn("g", lambda: 1.0, "A gauge.")
        reg.gauge_fn("g", lambda: 2.0, "A gauge.")
        text = reg.exposition()
        assert text.count("# TYPE g gauge") == 1
        assert "\ng 2\n" in text

    def test_broken_gauge_does_not_break_the_scrape(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge_fn("boom", lambda: 1 / 0)
        reg.counter("ok_total").inc()
        text = reg.exposition()
        assert "boom" not in text and "ok_total 1" in text


class TestInstrumentedCompile:
    def test_trace_covers_the_compile_and_feeds_stats(self):
        with ChassisSession(config=FAST, sample_config=SAMPLES) as session:
            core = parse_fpcore(SRC)
            before_ok = METRICS.counter(
                "repro_compiles_total", outcome="ok"
            ).value
            trace = Trace(name="f:c99")
            with tracing(trace):
                session.compile(core, get_target("c99"))
            names = set(trace.span_names())
            assert {
                "compile", "phase.parse", "phase.sample", "phase.transcribe",
                "phase.improve", "phase.regimes", "phase.score",
                "improve.iteration", "egraph.run_rules", "egraph.search",
                "egraph.apply", "oracle.wait", "oracle.hold",
            } <= names
            # acceptance: phase spans account for >= 90% of the compile span
            root = trace.find("compile")[0]
            phases = trace.phase_seconds()
            assert sum(phases.values()) >= 0.9 * root["dur"]
            # the same breakdown is surfaced to the caller thread-locally
            timings = session.last_phase_timings()
            assert timings is not None and set(timings) == set(phases)
            # satellite: oracle lock wait vs hold recorded separately
            oracle = session.stats.oracle
            assert oracle.acquisitions > 0
            assert oracle.hold_seconds > 0.0
            assert oracle.wait_seconds >= 0.0
            assert oracle.max_wait_seconds <= oracle.wait_seconds
            # the oracle counts its work
            assert session.evaluator.evals > 0
            after_ok = METRICS.counter(
                "repro_compiles_total", outcome="ok"
            ).value
            assert after_ok == before_ok + 1
            health = session.health()
            assert health["ok"] is True
            assert health["oracle"]["evals"] == session.evaluator.evals
            assert health["stats"]["oracle"]["acquisitions"] > 0

    def test_pooled_jobs_ship_traces_and_engine_counters(self):
        cores = [parse_fpcore(SRC), parse_fpcore(SRC2)]
        target = get_target("c99")
        # inline reference trace
        with ChassisSession(config=FAST, sample_config=SAMPLES) as session:
            ref = Trace()
            with tracing(ref):
                session.compile(cores[0], target)
        inline_names = set(ref.span_names())
        # pooled run: spans + engine deltas come back through JobOutcome
        with ChassisSession(
            config=FAST, sample_config=SAMPLES, jobs=2
        ) as session:
            outcomes = session.compile_many(
                [(core, target) for core in cores], trace=True
            )
            assert [outcome.ok for outcome in outcomes] == [True, True]
            for outcome in outcomes:
                assert outcome.trace is not None
                assert outcome.engine and outcome.engine["enodes_built"] > 0
            # satellite: worker EngineStats deltas merged into the session
            assert session.stats.engine.enodes_built > 0
            assert session.stats.engine.saturations > 0
            pooled = trace_from_dict(outcomes[0].trace)
            pooled_names = set(pooled.span_names())
        # same instrumentation either side of the process boundary: every
        # pooled span name exists inline (inline adds only the session's
        # oracle.wait/oracle.hold, which workers don't have)
        assert pooled_names <= inline_names
        assert {"compile", "phase.improve", "egraph.run_rules"} <= pooled_names
        assert pooled.find("compile")[0]["dur"] > 0.0


@pytest.fixture(scope="module")
def obs_server(tmp_path_factory):
    session = ChassisSession(
        config=FAST,
        sample_config=SAMPLES,
        cache=str(tmp_path_factory.mktemp("obs-serve-cache")),
    )
    server = create_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _get(url):
    with urllib.request.urlopen(url, timeout=300) as response:
        return response.status, dict(response.headers), response.read()


def _post(url, obj):
    request = urllib.request.Request(
        url,
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return response.status, dict(response.headers), response.read()


class TestServerObservability:
    def test_metrics_endpoint_is_valid_prometheus_text(self, obs_server):
        _post(obs_server + "/compile", {"core": SRC, "target": "c99"})
        # A request's own observation lands just after its response is
        # written, so poll until a scrape has seen a previous /metrics hit.
        deadline = time.monotonic() + 5.0
        while True:
            status, headers, body = _get(obs_server + "/metrics")
            if b'route="/metrics"' in body or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode("utf-8")
        assert_valid_exposition(text)
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{route="/metrics",status="200"}' in text
        assert "# TYPE repro_phase_seconds histogram" in text
        # session-owned gauges computed at scrape time
        assert "# TYPE repro_session_compiles gauge" in text
        assert "repro_oracle_evals" in text

    def test_unknown_routes_collapse_into_one_label(self, obs_server):
        for path in ("/nonesuch-a", "/nonesuch-b"):
            with pytest.raises(urllib.error.HTTPError):
                _get(obs_server + path)
        deadline = time.monotonic() + 5.0
        while True:
            _status, _headers, body = _get(obs_server + "/metrics")
            if b'route="<other>"' in body or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        text = body.decode("utf-8")
        assert 'route="<other>"' in text
        assert "nonesuch" not in text

    def test_compile_timings_knob(self, obs_server):
        core = "(FPCore t (x) :pre (< 0.001 x 0.9) (log (+ 1 x)))"
        # default: no timings key, and warm bodies stay byte-identical
        _s, headers1, body1 = _post(
            obs_server + "/compile", {"core": core, "target": "c99"}
        )
        assert "timings" not in json.loads(body1)
        # opt-in on a warm hit: key present, value null (no phases ran)
        _s, headers2, body2 = _post(
            obs_server + "/compile",
            {"core": core, "target": "c99", "timings": True},
        )
        assert headers2["X-Repro-Cached"] == "1"
        assert json.loads(body2)["timings"] is None
        # opt-in on a cold compile: the per-phase breakdown
        cold = "(FPCore t2 (x) :pre (< 0.1 x 2) (sqrt (+ 1 x)))"
        _s, headers3, body3 = _post(
            obs_server + "/compile",
            {"core": cold, "target": "c99", "timings": True},
        )
        assert headers3["X-Repro-Cached"] == "0"
        timings = json.loads(body3)["timings"]
        assert timings and timings["improve"] > 0.0
        assert set(timings) >= {"parse", "sample", "improve", "score"}

    def test_timings_knob_must_be_boolean(self, obs_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                obs_server + "/compile",
                {"core": SRC, "target": "c99", "timings": "yes"},
            )
        assert excinfo.value.code == 400


class TestHealthCLI:
    def test_local_session_table(self, capsys):
        assert main(["health"]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out
        assert "engine:" in out and "oracle lock:" in out

    def test_local_json_payload(self, capsys):
        assert main(["health", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "engine" in payload["stats"]

    def test_against_a_running_server(self, obs_server, capsys):
        assert main(["health", "--url", obs_server, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out
        assert "# TYPE repro_http_requests_total counter" in out

    def test_unreachable_server_fails_cleanly(self, capsys):
        assert main(["health", "--url", "http://127.0.0.1:9"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestTraceCLI:
    def test_compile_trace_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "compile", "sqrt-sub", "--target", "c99",
            "--iterations", "1", "--points", "8",
            "--json", "--trace", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr()
        row = json.loads(captured.out.splitlines()[0])
        assert row["status"] == "ok"
        assert row["timings"]["improve"] > 0.0
        assert "wrote" in captured.err and str(out) in captured.err
        data = json.loads(out.read_text())
        events = data["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        compile_events = [e for e in events if e["name"] == "compile"]
        phase_dur = sum(
            e["dur"] for e in events if e["name"].startswith("phase.")
        )
        # acceptance: phase spans sum to within 10% of the compile span
        assert len(compile_events) == 1
        assert phase_dur >= 0.9 * compile_events[0]["dur"]
