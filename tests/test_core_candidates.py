"""Tests for candidates and Pareto frontiers (with hypothesis invariants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Candidate, ParetoFrontier
from repro.ir import Num, Var


def _cand(cost, error, name="p"):
    return Candidate(program=Var(f"{name}_{cost}_{error}"), cost=cost, error=error)


class TestCandidate:
    def test_dominates(self):
        assert _cand(1, 1).dominates(_cand(2, 2))
        assert _cand(1, 2).dominates(_cand(1, 3))
        assert not _cand(1, 3).dominates(_cand(2, 1))
        assert not _cand(1, 1).dominates(_cand(1, 1))  # equal: no strict edge


class TestParetoFrontier:
    def test_keeps_non_dominated(self):
        f = ParetoFrontier()
        assert f.add(_cand(10, 1))
        assert f.add(_cand(1, 10))
        assert len(f) == 2

    def test_rejects_dominated(self):
        f = ParetoFrontier([_cand(1, 1)])
        assert not f.add(_cand(2, 2))
        assert len(f) == 1

    def test_evicts_dominated(self):
        f = ParetoFrontier([_cand(5, 5), _cand(10, 2)])
        assert f.add(_cand(1, 1))
        assert len(f) == 1

    def test_rejects_duplicate_scores(self):
        f = ParetoFrontier([_cand(3, 3)])
        assert not f.add(_cand(3, 3, name="other"))

    def test_best_accessors(self):
        f = ParetoFrontier([_cand(10, 1), _cand(1, 10), _cand(5, 5)])
        assert f.best_error().error == 1
        assert f.best_cost().cost == 1

    def test_empty_best_raises(self):
        with pytest.raises(ValueError):
            ParetoFrontier().best_error()

    def test_fastest_within(self):
        f = ParetoFrontier([_cand(10, 1), _cand(1, 10), _cand(5, 5)])
        assert f.fastest_within(5).cost == 5
        assert f.fastest_within(0.5) is None

    def test_sorted_by_cost(self):
        f = ParetoFrontier([_cand(10, 1), _cand(1, 10), _cand(5, 5)])
        costs = [c.cost for c in f.sorted_by_cost()]
        assert costs == sorted(costs)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=1e4),
            st.floats(min_value=0.0, max_value=64.0),
        ),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_frontier_invariant_no_mutual_domination(pairs):
    f = ParetoFrontier(_cand(c, e, name=str(i)) for i, (c, e) in enumerate(pairs))
    items = list(f)
    for a in items:
        for b in items:
            if a is not b:
                assert not a.dominates(b)
    # every input is dominated-or-equal by something on the frontier
    for cost, error in pairs:
        assert any(c.cost <= cost and c.error <= error for c in items)
