"""Deadline enforcement off the main thread: the thread-safe replacement
for SIGALRM-only job timeouts.

The contracts pinned down here:

* the :mod:`repro.deadline` primitives themselves (nesting, restoration,
  BaseException-ness);
* a session ``timeout`` binds inline compiles running on *non-main*
  threads — serve handlers and ``submit`` workers — which previously ran
  silently unbounded;
* the serve front-end reports such timeouts as a ``timeout`` *outcome*
  (200 + status field, like failed pairs), not a hung request or a 500;
* timeouts are counted by session stats (``/health`` used to miss them
  entirely).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.accuracy.sampler import SampleConfig
from repro.api import (
    ChassisSession,
    CompileConfig,
    DeadlineExceeded,
    JobTimeout,
    check_deadline,
    create_server,
    deadline,
)
from repro.benchsuite import core_named

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)

SRC = "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"


class TestDeadlinePrimitives:
    def test_no_deadline_never_fires(self):
        check_deadline()  # no-op outside any deadline scope

    def test_expired_deadline_raises(self):
        with pytest.raises(DeadlineExceeded):
            with deadline(0.0001):
                import time

                time.sleep(0.01)
                check_deadline()

    def test_generous_deadline_passes_and_restores(self):
        with deadline(60.0):
            check_deadline()
        check_deadline()  # restored to unbounded

    def test_nested_deadline_keeps_the_tighter_bound(self):
        import time

        with deadline(0.0001):
            time.sleep(0.01)
            with deadline(60.0):  # cannot extend the outer budget
                with pytest.raises(DeadlineExceeded):
                    check_deadline()

    def test_is_base_exception(self):
        # Broad `except Exception` guards (sampler, e-graph) must not be
        # able to swallow a timeout.
        assert not issubclass(DeadlineExceeded, Exception)
        assert issubclass(JobTimeout, DeadlineExceeded)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            with deadline(0):
                pass


class TestSessionTimeouts:
    def test_inline_compile_times_out_off_main_thread(self):
        """The core bug: a worker thread's compile used to run unbounded."""
        session = ChassisSession(config=FAST, sample_config=SAMPLES, timeout=0.001)
        outcome = {}

        def compile_in_thread():
            try:
                session.compile(core_named("sqrt-sub"), "c99")
                outcome["status"] = "completed"
            except DeadlineExceeded:
                outcome["status"] = "timeout"

        thread = threading.Thread(target=compile_in_thread)
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert outcome["status"] == "timeout"
        assert session.stats.timeouts == 1
        assert session.stats.failures == 0

    def test_submit_handle_times_out(self):
        """submit() futures run on executor threads: bounded now too."""
        session = ChassisSession(config=FAST, sample_config=SAMPLES, timeout=0.001)
        handle = session.submit(core_named("sqrt-sub"), "c99")
        assert isinstance(handle.exception(timeout=60), DeadlineExceeded)
        assert handle.poll() == "failed"
        session.close()

    def test_per_call_timeout_overrides_session_default(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        with pytest.raises(DeadlineExceeded):
            session.compile(core_named("sqrt-sub"), "c99", timeout=0.001)
        # the same session compiles fine without the override
        result = session.compile(core_named("sqrt-sub"), "arith")
        assert result.frontier

    def test_inline_batch_records_timeout_outcome(self):
        """jobs=1 batches run inline; the deadline (not SIGALRM) must
        bound them even on a non-main thread, recorded per job."""
        session = ChassisSession(config=FAST, sample_config=SAMPLES, timeout=0.001)
        outcomes = {}

        def batch_in_thread():
            outcomes["batch"] = session.compile_many(
                [(core_named("sqrt-sub"), "c99")]
            )

        thread = threading.Thread(target=batch_in_thread)
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()
        (outcome,) = outcomes["batch"]
        assert outcome.status == "timeout"
        assert outcome.error_type == "JobTimeout"
        assert session.stats.timeouts == 1


@pytest.fixture(scope="module")
def timeout_server():
    """A serve front-end whose session has no default timeout; requests
    opt in per call via the ``timeout`` knob."""
    session = ChassisSession(config=FAST, sample_config=SAMPLES)
    server = create_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    session.close()
    thread.join(timeout=10)


def _post(server, path, obj):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return response.status, dict(response.headers), json.loads(response.read())


class TestServeTimeouts:
    def test_tiny_timeout_compile_is_a_timeout_outcome(self, timeout_server):
        """Acceptance: /compile with a deliberately tiny timeout terminates
        as a ``timeout`` outcome instead of running unbounded (handler
        threads cannot arm SIGALRM; the cooperative deadline fires)."""
        status, headers, payload = _post(
            timeout_server, "/compile",
            {"core": SRC, "target": "c99", "timeout": 0.001},
        )
        assert status == 200
        assert payload["status"] == "timeout"
        assert payload["error_type"] == "JobTimeout"
        assert payload["benchmark"] == "f" and payload["target"] == "c99"
        assert headers["X-Repro-Cached"] == "0"

    def test_timeouts_surface_in_health(self, timeout_server):
        _post(timeout_server, "/compile",
              {"core": SRC, "target": "c99", "timeout": 0.001})
        host, port = timeout_server.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}/health", timeout=30
        ) as response:
            payload = json.loads(response.read())
        assert payload["stats"]["timeouts"] >= 1

    def test_bad_timeout_knob_is_400(self, timeout_server):
        for bad in (0, -1, "soon", True):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(timeout_server, "/compile",
                      {"core": SRC, "target": "c99", "timeout": bad})
            assert excinfo.value.code == 400

    def test_without_timeout_the_same_request_completes(self, timeout_server):
        status, _headers, payload = _post(
            timeout_server, "/compile", {"core": SRC, "target": "arith"}
        )
        assert status == 200
        assert payload["status"] == "ok"
