"""Tests for the provenance subsystem: ledger, session/batch/server
integration, and the ``repro report`` generator's lineage contract."""

import importlib.util
import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.accuracy.sampler import SampleConfig
from repro.api import (
    ChassisSession,
    CompileConfig,
    ProvenanceLedger,
    create_server,
    job_fingerprint,
)
from repro.provenance.ledger import LEDGER_SCHEMA, host_info
from repro.provenance.provider import FIGURES, FigureData, SessionDataProvider
from repro.provenance.report import generate_report
from repro.service.scheduler import JobOutcome

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)

SRC = "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"
SRC2 = "(FPCore g (x) :pre (< 0.1 x 1) (+ (* x x) 1))"
INFEASIBLE = "(FPCore nopoints (x) :pre (and (< 2 x) (< x 1)) x)"


def fast_session(cache_dir, **kwargs) -> ChassisSession:
    return ChassisSession(
        config=FAST, sample_config=SAMPLES, cache=str(cache_dir), **kwargs
    )


# --- the ledger itself ------------------------------------------------------------------


class TestLedger:
    def test_round_trip(self, tmp_path):
        ledger = ProvenanceLedger(tmp_path / "prov.jsonl")
        record = ledger.append({"schema": LEDGER_SCHEMA, "kind": "compile",
                                "fingerprint": "ab" * 32, "status": "ok"})
        assert record["kind"] == "compile"
        [read] = ledger.iter_records()
        assert read == record
        assert ledger.count() == 1
        info = ledger.info()
        assert info["records"] == 1 and info["appended"] == 1
        assert info["last_write"] is not None

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "prov.jsonl"
        ledger = ProvenanceLedger(path)
        ledger.append({"fingerprint": "aa" * 32, "status": "ok"})
        with open(path, "a") as handle:
            handle.write('{"torn": tra')  # a killed process mid-write
        ledger.append({"fingerprint": "bb" * 32, "status": "ok"})
        # NOTE: the torn line has no trailing newline, so the next O_APPEND
        # write glues onto it — both become one unparseable line.  That is
        # the documented worst case: skip, never raise.
        records = list(ledger.iter_records())
        assert all(isinstance(record, dict) for record in records)
        assert records  # the first record always survives

    def test_prefix_matching(self, tmp_path):
        ledger = ProvenanceLedger(tmp_path / "prov.jsonl")
        fingerprint = "deadbeef" * 8
        ledger.append({"fingerprint": fingerprint, "status": "ok"})
        assert ledger.records_for(fingerprint)
        assert ledger.records_for(fingerprint[:12])
        assert ledger.records_for("deadbeef")
        assert not ledger.records_for("dead")  # < 8 chars: too ambiguous
        assert not ledger.records_for("ab" * 32)

    def test_resolve_ignores_hits_and_matches_status(self, tmp_path):
        ledger = ProvenanceLedger(tmp_path / "prov.jsonl")
        fingerprint = "cd" * 32
        ledger.append({"fingerprint": fingerprint, "status": "ok",
                       "cache": "hit"})
        assert ledger.resolve(fingerprint) is None  # hits are not lineage
        ledger.append({"fingerprint": fingerprint, "status": "failed",
                       "cache": "none"})
        assert ledger.resolve(fingerprint) is None
        assert ledger.resolve(fingerprint, status="failed") is not None
        ledger.append({"fingerprint": fingerprint, "status": "ok",
                       "cache": "store", "mark": 1})
        ledger.append({"fingerprint": fingerprint, "status": "ok",
                       "cache": "store", "mark": 2})
        assert ledger.resolve(fingerprint)["mark"] == 2  # latest wins

    def test_concurrent_appends_never_tear(self, tmp_path):
        ledger = ProvenanceLedger(tmp_path / "prov.jsonl")
        n_threads, per_thread = 8, 50

        def writer(thread_index):
            for i in range(per_thread):
                ledger.append({"fingerprint": f"{thread_index:02d}" * 32,
                               "status": "ok", "i": i})

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = list(ledger.iter_records())
        assert len(records) == n_threads * per_thread
        assert ledger.appended == n_threads * per_thread
        for thread_index in range(n_threads):
            mine = [r for r in records
                    if r["fingerprint"] == f"{thread_index:02d}" * 32]
            assert sorted(r["i"] for r in mine) == list(range(per_thread))

    def test_close_reopens_lazily(self, tmp_path):
        ledger = ProvenanceLedger(tmp_path / "prov.jsonl")
        ledger.append({"fingerprint": "ee" * 32, "status": "ok"})
        ledger.close()
        ledger.append({"fingerprint": "ff" * 32, "status": "ok"})
        assert ledger.count() == 2

    def test_host_info_shape(self):
        info = host_info()
        assert info["hostname"] and info["python"] and info["platform"]
        assert "cc" in info and "commit" in info


# --- session integration ----------------------------------------------------------------


class TestSessionLedger:
    def test_store_then_hit_records(self, tmp_path):
        session = fast_session(tmp_path / "cache")
        try:
            session.compile(SRC, "c99")
            session.compile(SRC, "c99")
            records = list(session.ledger.iter_records())
            assert [r["cache"] for r in records] == ["store", "hit"]
            expected = job_fingerprint(
                session.parse(SRC), session.resolve_target("c99"),
                session.config, session.sample_config,
            )
            assert all(r["fingerprint"] == expected for r in records)
            assert records[0]["kind"] == "compile"
            assert records[0]["status"] == "ok"
            assert records[0]["elapsed"] > 0
            assert records[0]["engine"]  # fresh compiles carry deltas
            assert records[0]["benchmark"] == "f"
            assert records[0]["target"] == "c99"
            assert records[0]["host"]["hostname"]
            # the hit resolves to the original store record
            assert session.ledger.resolve(expected)["cache"] == "store"
        finally:
            session.close()

    def test_last_provenance_fresh_and_warm(self, tmp_path):
        session = fast_session(tmp_path / "cache")
        try:
            session.compile(SRC, "c99")
            fresh = session.last_provenance()
            assert fresh["cached"] is False
            assert fresh["record"]["cache"] == "store"
            assert fresh["origin"] == fresh["record"]
            session.compile(SRC, "c99")
            warm = session.last_provenance()
            assert warm["cached"] is True
            assert warm["record"]["cache"] == "hit"
            assert warm["origin"]["cache"] == "store"
            assert warm["fingerprint"] == fresh["fingerprint"]
        finally:
            session.close()

    def test_failed_compile_is_recorded(self, tmp_path):
        from repro.accuracy.sampler import SamplingError

        session = fast_session(tmp_path / "cache")
        try:
            with pytest.raises(SamplingError):
                session.compile(INFEASIBLE, "c99")
            [record] = session.ledger.iter_records()
            assert record["status"] == "failed"
            assert record["error_type"] == "SamplingError"
        finally:
            session.close()

    def test_no_cache_means_no_ledger(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        try:
            assert session.ledger is None
            session.compile(SRC2, "python")
            assert session.last_provenance() is None
            assert session.provenance_for("ab" * 32) == []
            assert session.health()["provenance"] is None
        finally:
            session.close()

    def test_env_opt_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROVENANCE", "0")
        session = fast_session(tmp_path / "cache")
        try:
            assert session.ledger is None
        finally:
            session.close()

    def test_explicit_ledger_path(self, tmp_path):
        session = ChassisSession(
            config=FAST, sample_config=SAMPLES,
            ledger=str(tmp_path / "elsewhere.jsonl"),
        )
        try:
            assert session.ledger.path == tmp_path / "elsewhere.jsonl"
        finally:
            session.close()

    def test_batch_records(self, tmp_path):
        session = fast_session(tmp_path / "cache")
        try:
            specs = [
                (session.parse(SRC), "c99"),
                (session.parse(SRC2), "python"),
                (session.parse(INFEASIBLE), "c99"),
            ]
            outcomes = session.compile_many(specs)
            records = [r for r in session.ledger.iter_records()
                       if r["kind"] == "batch"]
            assert len(records) == 3
            by_bench = {r["benchmark"]: r for r in records}
            assert by_bench["f"]["cache"] == "store"
            assert by_bench["nopoints"]["status"] == "failed"
            assert by_bench["nopoints"]["error_type"] == "SamplingError"
            # fingerprints in the ledger match the outcomes' own
            assert {r["fingerprint"] for r in records} == {
                o.fingerprint for o in outcomes
            }
            # a warm rerun appends hit records for the ok jobs
            session.compile_many(specs[:2])
            hits = [r for r in session.ledger.iter_records()
                    if r["kind"] == "batch" and r["cache"] == "hit"]
            assert len(hits) == 2
        finally:
            session.close()

    def test_batch_records_through_worker_pool(self, tmp_path):
        session = fast_session(tmp_path / "cache", jobs=2)
        try:
            outcomes = session.compile_many(
                [(session.parse(SRC), "c99"), (session.parse(SRC2), "c99")]
            )
            assert all(o.ok for o in outcomes)
            records = [r for r in session.ledger.iter_records()
                       if r["kind"] == "batch"]
            assert [r["cache"] for r in records] == ["store", "store"]
            # pooled jobs ship oracle counters home; the parent records them
            assert any(r.get("oracle") for r in records)
            # all records were written by THIS process (workers never write)
            assert session.ledger.appended == len(
                list(session.ledger.iter_records())
            )
        finally:
            session.close()

    def test_validate_writes_a_record(self, tmp_path):
        session = fast_session(tmp_path / "cache")
        try:
            report = session.validate(SRC2, "python")
            kinds = [r["kind"] for r in session.ledger.iter_records()]
            assert "validate" in kinds
            [record] = [r for r in session.ledger.iter_records()
                        if r["kind"] == "validate"]
            assert record["exec_backend"] == report.backend
            assert record["agreement"] == report.ok
        finally:
            session.close()


# --- HTTP front-end ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    session = fast_session(tmp_path_factory.mktemp("prov-serve-cache"))
    server = create_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _get(url):
    with urllib.request.urlopen(url, timeout=300) as response:
        return response.status, response.read()


def _post(url, obj):
    request = urllib.request.Request(
        url, data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return response.status, response.read()


class TestProvenanceEndpoint:
    def test_info_then_records(self, base_url):
        status, body = _post(base_url + "/compile", {"core": SRC, "target": "c99"})
        assert status == 200
        status, body = _get(base_url + "/provenance")
        assert status == 200
        info = json.loads(body)
        assert info["records"] >= 1 and info["path"].endswith("provenance.jsonl")
        # look up by full fingerprint and by prefix
        fingerprint = json.loads(
            _post(base_url + "/compile",
                  {"core": SRC, "target": "c99", "provenance": True})[1]
        )["provenance"]["fingerprint"]
        for query in (fingerprint, fingerprint[:12]):
            status, body = _get(base_url + f"/provenance?fingerprint={query}")
            assert status == 200
            payload = json.loads(body)
            assert payload["records"]
            assert all(r["fingerprint"] == fingerprint
                       for r in payload["records"])

    def test_unknown_fingerprint_is_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base_url + "/provenance?fingerprint=" + "ab" * 32)
        assert excinfo.value.code == 404

    def test_compile_provenance_knob_rides_outside_cached_bytes(self, base_url):
        body = {"core": SRC2, "target": "c99"}
        _status, cold = _post(base_url + "/compile", body)
        _status, warm = _post(base_url + "/compile", body)
        assert cold == warm  # plain warm bodies stay byte-identical
        _status, with_prov = _post(
            base_url + "/compile", {**body, "provenance": True}
        )
        payload = json.loads(with_prov)
        assert payload["provenance"]["cached"] is True
        assert payload["provenance"]["record"]["cache"] == "hit"
        # the warm response resolves to the original compilation's record
        origin = payload["provenance"]["origin"]
        assert origin["cache"] == "store" and origin["status"] == "ok"
        # the result payload itself is still the cached bytes
        assert payload["result"] == json.loads(cold)["result"]

    def test_health_has_a_provenance_section(self, base_url):
        _status, body = _get(base_url + "/health")
        provenance = json.loads(body)["provenance"]
        assert provenance is not None
        assert provenance["records"] >= 1
        assert provenance["appended"] >= 1

    def test_provenance_knob_must_be_boolean(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url + "/compile",
                  {"core": SRC, "target": "c99", "provenance": "yes"})
        assert excinfo.value.code == 400


def test_provenance_route_404_without_ledger():
    session = ChassisSession(config=FAST, sample_config=SAMPLES)  # no cache
    server = create_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"http://{host}:{port}/provenance")
        assert excinfo.value.code == 404
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        session.close()


# --- report generation ------------------------------------------------------------------


class StaticProvider:
    """A minimal DataProvider over canned figures + outcomes."""

    def __init__(self, figures):
        self._figures = figures

    def figures(self):
        return tuple(self._figures)

    def figure(self, key):
        return self._figures[key]


def _outcome(fingerprint, status="ok", cached=False):
    return JobOutcome(index=0, benchmark="f", target="c99", status=status,
                      fingerprint=fingerprint, cached=cached)


class TestGenerateReport:
    def _provider_and_ledger(self, tmp_path, *, record=True):
        fingerprint = "ab" * 32
        ledger = ProvenanceLedger(tmp_path / "prov.jsonl")
        if record:
            ledger.append({"fingerprint": fingerprint, "status": "ok",
                           "cache": "store"})
        fig = FigureData(
            figure="fig6", name="fig6_targets", title="Figure 6 — test",
            table="a table\n", data=[{"x": 1}],
            jobs=[_outcome(fingerprint, cached=True)],
        )
        return StaticProvider({"fig6": fig}), ledger

    def test_generate_writes_artifacts_with_manifest(self, tmp_path):
        provider, ledger = self._provider_and_ledger(tmp_path)
        out = tmp_path / "report"
        status, summary = generate_report(
            provider, ledger, out, figures=("fig6",)
        )
        assert status == 0
        artifact = json.loads((out / "fig6_targets.json").read_text())
        assert artifact["table"] == "a table\n"
        assert artifact["provenance"]["jobs"][0]["ledger"] == "resolved"
        assert artifact["provenance"]["host"]["hostname"]
        assert (out / "fig6_targets.md").exists()
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["figures"]["fig6"]["compiles"]["cached"] == 1
        assert (out / "report.md").read_text().startswith("# Reproduction report")

    def test_check_passes_on_identical_regeneration(self, tmp_path):
        provider, ledger = self._provider_and_ledger(tmp_path)
        out = tmp_path / "report"
        generate_report(provider, ledger, out, figures=("fig6",))
        status, summary = generate_report(
            provider, ledger, out, figures=("fig6",), check=True
        )
        assert status == 0 and not summary["problems"]

    def test_check_fails_on_table_drift(self, tmp_path):
        provider, ledger = self._provider_and_ledger(tmp_path)
        out = tmp_path / "report"
        generate_report(provider, ledger, out, figures=("fig6",))
        artifact_path = out / "fig6_targets.json"
        artifact = json.loads(artifact_path.read_text())
        artifact["table"] += "drift\n"
        artifact_path.write_text(json.dumps(artifact))
        status, summary = generate_report(
            provider, ledger, out, figures=("fig6",), check=True
        )
        assert status == 1
        assert any("table differs" in p for p in summary["problems"])

    def test_check_fails_on_data_drift(self, tmp_path):
        provider, ledger = self._provider_and_ledger(tmp_path)
        out = tmp_path / "report"
        generate_report(provider, ledger, out, figures=("fig6",))
        artifact_path = out / "fig6_targets.json"
        artifact = json.loads(artifact_path.read_text())
        artifact["data"] = [{"x": 2}]
        artifact_path.write_text(json.dumps(artifact))
        status, summary = generate_report(
            provider, ledger, out, figures=("fig6",), check=True
        )
        assert status == 1
        assert any("data differs" in p for p in summary["problems"])

    def test_check_fails_when_ledger_lacks_the_job(self, tmp_path):
        provider, ledger = self._provider_and_ledger(tmp_path, record=False)
        out = tmp_path / "report"
        generate_report(provider, ledger, out, figures=("fig6",))
        status, summary = generate_report(
            provider, ledger, out, figures=("fig6",), check=True
        )
        assert status == 1
        assert any("no fresh-compile record" in p for p in summary["problems"])

    def test_check_fails_on_missing_artifact(self, tmp_path):
        provider, ledger = self._provider_and_ledger(tmp_path)
        status, summary = generate_report(
            provider, ledger, tmp_path / "never-written",
            figures=("fig6",), check=True,
        )
        assert status == 1
        assert any("no committed artifact" in p for p in summary["problems"])

    def test_check_mode_never_writes(self, tmp_path):
        provider, ledger = self._provider_and_ledger(tmp_path)
        out = tmp_path / "report"
        generate_report(provider, ledger, out, figures=("fig6",), check=True)
        assert not out.exists()


class TestLiveReportDeterminism:
    """The acceptance contract: regenerate from a warm cache with zero
    recompiles, byte-identically, through a *fresh* provider+session."""

    def test_warm_regeneration_is_byte_identical(self, tmp_path):
        from repro.benchsuite import core_named
        from repro.experiments.runner import ExperimentConfig

        cache_dir = str(tmp_path / "cache")
        out = tmp_path / "report"
        figures = ("fig6", "fig7")  # fig7 is the cheapest compiling figure
        cores = [core_named("sqrt-sub")]

        def run(check):
            config = ExperimentConfig(FAST, SAMPLES, cache=cache_dir)
            provider = SessionDataProvider(config, cores)
            try:
                return generate_report(
                    provider, config.get_session().ledger, out,
                    figures=figures, check=check,
                )
            finally:
                config.close()

        status, summary = run(check=False)
        assert status == 0
        cold_bytes = (out / "fig7_clang.json").read_bytes()
        cold_table = json.loads(cold_bytes)["table"]
        assert "Figure 7" in cold_table
        assert "run time per benchmark" not in cold_table  # timing footer off

        status, summary = run(check=True)
        assert status == 0, summary["problems"]
        assert summary["totals"]["recompiled"] == 0
        assert summary["totals"]["ledger_missing"] == 0
        assert summary["figures"]["fig7"]["compiles"]["cached"] == \
            summary["figures"]["fig7"]["compiles"]["total"]


class TestProviderShape:
    def test_protocol_and_figure_keys(self, tmp_path):
        from repro.experiments.runner import ExperimentConfig
        from repro.provenance.provider import DataProvider

        config = ExperimentConfig(FAST, SAMPLES)
        provider = SessionDataProvider(config, [])
        try:
            assert isinstance(provider, DataProvider)
            assert provider.figures() == FIGURES
            with pytest.raises(KeyError):
                provider.figure("fig11")
            fig6 = provider.figure("fig6")
            assert fig6.jobs == [] and "Target" in fig6.table
        finally:
            config.close()

    def test_fig8_and_fig9_share_one_run(self, tmp_path):
        from repro.benchsuite import core_named
        from repro.experiments.runner import ExperimentConfig

        config = ExperimentConfig(FAST, SAMPLES, cache=str(tmp_path / "c"))
        provider = SessionDataProvider(
            config, [core_named("sqrt-sub")], herbie_targets=["c99"],
        )
        try:
            fig8 = provider.figure("fig8")
            compiles_after_fig8 = config.get_session().stats.compiles
            fig9 = provider.figure("fig9")
            assert config.get_session().stats.compiles == compiles_after_fig8
            assert fig8.jobs == fig9.jobs  # same lineage, one run
        finally:
            config.close()


# --- CLI --------------------------------------------------------------------------------


class TestCli:
    def test_report_and_provenance_commands(self, tmp_path, capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        out = str(tmp_path / "report")
        argv = ["report", "--figures", "fig6", "--benchmarks", "1",
                "--points", "8", "--iterations", "1",
                "--cache-dir", cache, "--out", out]
        assert main(argv) == 0
        assert (Path(out) / "fig6_targets.json").exists()
        assert main(argv + ["--check"]) == 0
        captured = capsys.readouterr()
        assert "check ok" in captured.out

        # ledger info (fig6 compiles nothing, so the ledger is empty but
        # present — the session created it next to the cache)
        assert main(["provenance", "--cache-dir", cache]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["path"].endswith("provenance.jsonl")
        # unknown fingerprint: nonzero
        assert main(["provenance", "ab" * 32, "--cache-dir", cache]) == 1

    def test_report_rejects_unknown_figures(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", "--figures", "fig99"])

    def test_health_renders_provenance_section(self, tmp_path, capsys):
        from repro.cli import _render_health

        session = fast_session(tmp_path / "cache")
        try:
            session.compile(SRC2, "python")
            _render_health(session.health())
            out = capsys.readouterr().out
            assert "provenance:" in out
            assert "appended" in out
        finally:
            session.close()


# --- bench trajectory schema (satellite) ------------------------------------------------


def _load_bench_smoke():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_compile_smoke.py"
    spec = importlib.util.spec_from_file_location("bench_compile_smoke", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestTrajectorySchema:
    GOOD = {
        "commit": "abc123", "date": "2026-01-01T00:00:00+00:00",
        "target": "c99",
        "compile": {
            "benchmarks": [{"benchmark": "sqrt-sub", "seconds": 0.5,
                            "phases": {"improve": 0.3},
                            "phase_coverage": 0.97}],
            "total_seconds": 0.5, "min_phase_coverage": 0.97,
        },
        "engine": {"summary": {"ops": 1}},
        "oracle": {"geomean_speedup": 15.0, "fastpath_fraction": 0.98,
                   "longdouble_fraction": 0.82, "dd_fraction": 0.16,
                   "ladder_fraction": 0.02, "identical": True},
        "formats": {"fp16": {"all_validated": True}},
    }

    def test_complete_record_passes(self):
        bench = _load_bench_smoke()
        assert bench.validate_trajectory_record(self.GOOD) == []

    def test_oracle_summary_requires_rung_fractions(self):
        bench = _load_bench_smoke()
        oracle = {k: v for k, v in self.GOOD["oracle"].items()
                  if k != "dd_fraction"}
        problems = bench.validate_trajectory_record(
            {**self.GOOD, "oracle": oracle}
        )
        assert any("dd_fraction" in p for p in problems)

    def test_missing_summaries_fail_loudly(self):
        bench = _load_bench_smoke()
        record = {**self.GOOD, "engine": None, "oracle": {}, "formats": None}
        problems = bench.validate_trajectory_record(record)
        assert len(problems) == 3
        # --allow-partial relaxes exactly these three
        assert bench.validate_trajectory_record(
            record, require_summaries=False
        ) == []

    def test_empty_compile_rows_fail_even_partial(self):
        bench = _load_bench_smoke()
        record = {**self.GOOD, "compile": {**self.GOOD["compile"],
                                           "benchmarks": []}}
        assert bench.validate_trajectory_record(record, require_summaries=False)

    def test_row_missing_phases_fails(self):
        bench = _load_bench_smoke()
        row = {"benchmark": "x", "seconds": 1.0, "phases": {},
               "phase_coverage": 0.99}
        record = {**self.GOOD, "compile": {**self.GOOD["compile"],
                                           "benchmarks": [row]}}
        problems = bench.validate_trajectory_record(record)
        assert any("phase breakdown" in p for p in problems)

    def test_append_refuses_non_trajectory_files(self, tmp_path):
        bench = _load_bench_smoke()
        path = tmp_path / "BENCH.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError):
            bench.append_trajectory(path, {"commit": "abc"})
