"""Tests for polynomial-approximation transcription (paper section 2)."""

import math

import pytest

from repro.accuracy import score_program
from repro.core import Untranscribable, transcribe_with_poly
from repro.cost import TargetCostModel
from repro.ir import parse_expr


class TestTranscribeWithPoly:
    def test_plain_transcription_untouched(self, c99):
        out = transcribe_with_poly(parse_expr("(+ x (sqrt y))"), c99)
        assert out.op == "add.f64"

    def test_sin_on_arith_becomes_polynomial(self, arith):
        out = transcribe_with_poly(parse_expr("(sin x)"), arith, degree=5)
        assert TargetCostModel(arith).supports_program(out)
        assert "sin" not in str(out)

    def test_polynomial_accurate_near_zero(self, arith):
        out = transcribe_with_poly(parse_expr("(sin x)"), arith, degree=7)
        points = [{"x": 0.02 * k} for k in range(1, 5)]
        exact = [math.sin(p["x"]) for p in points]
        near = score_program(out, arith, points, exact)
        assert near < 10  # truncation error only, not garbage
        far_points = [{"x": 0.5}, {"x": 1.0}]
        far = score_program(out, arith, far_points, [math.sin(0.5), math.sin(1.0)])
        assert near < far < 64  # degrades smoothly away from the expansion

    def test_nested_inside_supported_ops(self, avx):
        # a * exp(x): mul is native, exp needs approximation.
        out = transcribe_with_poly(parse_expr("(* a (exp x))"), avx, degree=4)
        assert TargetCostModel(avx).supports_program(out)
        assert out.op == "mul.f64"

    def test_multivariate_transcendental_still_fails(self, arith):
        with pytest.raises(Untranscribable):
            transcribe_with_poly(parse_expr("(atan2 y x)"), arith)

    def test_conditional_branches_lowered(self, arith):
        out = transcribe_with_poly(
            parse_expr("(if (< x 0) (exp x) x)"), arith, degree=4
        )
        assert out.op == "if"
        assert TargetCostModel(arith).supports_program(out.args[1])
