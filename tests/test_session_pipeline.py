"""Tests for the session API and the phase pipeline (skip/replace/hooks)."""

import pytest

from repro.accuracy.sampler import SampleConfig
from repro.api import (
    PHASE_NAMES,
    ChassisSession,
    CompileConfig,
    CompilePipeline,
    PipelineError,
)
from repro.core.pipeline import PipelineContext, SamplePhase
from repro.service.cache import CompileCache

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)

SRC = "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"


@pytest.fixture(scope="module")
def session():
    return ChassisSession(config=FAST, sample_config=SAMPLES)


class TestPipelinePhases:
    def test_default_runs_all_phases_in_order(self, session):
        seen = []
        session.compile(SRC, "c99", before=lambda name, ctx: seen.append(name))
        assert seen == list(PHASE_NAMES)

    def test_skip_score_yields_train_frontier_only(self, session):
        ctx = session.run_pipeline(SRC, "c99", skip=("score",))
        assert ctx.result is None and ctx.test_frontier is None
        assert len(ctx.train_frontier) >= 1

    def test_improve_is_the_score_free_variant(self, session):
        frontier = session.improve(SRC, "c99")
        assert all(c.origin != "input" for c in frontier)
        assert len(frontier) >= 1

    def test_skip_regimes(self, session):
        seen = []
        result = session.compile(
            SRC, "c99", skip=("regimes",), after=lambda name, ctx: seen.append(name)
        )
        assert "regimes" not in seen and "score" in seen
        assert all(c.origin != "regimes" for c in result.frontier)

    def test_replace_sample_phase_with_presupplied_samples(self, session):
        core = session.parse(SRC)
        fixed = session.samples_for(core)

        class FixedSamples:
            name = "sample"

            def run(self, ctx):
                ctx.samples = fixed

        result = session.compile(SRC, "c99", replace={"sample": FixedSamples()})
        assert result.samples is fixed

    def test_unknown_phase_name_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            CompilePipeline(skip=("nonesuch",))
        with pytest.raises(ValueError, match="unknown phase"):
            CompilePipeline(replace={"nonesuch": SamplePhase()})

    def test_skipping_sample_without_samples_fails_loudly(self, session):
        with pytest.raises(PipelineError, match="ctx.samples"):
            session.run_pipeline(SRC, "c99", skip=("sample",))

    def test_context_require_names_the_phase(self):
        ctx = PipelineContext(target=None)
        with pytest.raises(PipelineError, match="'improve'"):
            ctx.require("samples", "improve")


class TestChassisSession:
    def test_compile_accepts_source_text_and_target_names(self, session):
        result = session.compile(SRC, "c99")
        assert result.target.name == "c99"
        assert result.core.name == "f"

    def test_persistent_cache_round_trip(self, tmp_path):
        session = ChassisSession(config=FAST, sample_config=SAMPLES, cache=str(tmp_path))
        cold = session.compile(SRC, "c99")
        assert session.stats.compiles == 1 and session.stats.cache_hits == 0
        warm = session.compile(SRC, "c99")
        assert session.stats.compiles == 1 and session.stats.cache_hits == 1
        assert [(c.cost, c.error) for c in warm.frontier] == [
            (c.cost, c.error) for c in cold.frontier
        ]

    def test_customized_pipeline_bypasses_cache(self, tmp_path):
        session = ChassisSession(config=FAST, sample_config=SAMPLES, cache=str(tmp_path))
        session.compile(SRC, "c99")
        session.compile(SRC, "c99", skip=("regimes",))
        # the partial compile neither hit nor stored
        assert session.stats.cache_hits == 0
        assert session.cache.stats.stores == 1

    def test_caller_supplied_samples_bypass_the_cache(self, tmp_path):
        """Arbitrary samples must never poison the persistent cache."""
        session = ChassisSession(config=FAST, sample_config=SAMPLES, cache=str(tmp_path))
        core = session.parse(SRC)
        session.compile(core, "c99", samples=session.samples_for(core))
        assert session.cache.stats.stores == 0
        # a plain compile afterwards is a miss, not a (possibly wrong) hit
        session.compile(core, "c99")
        assert session.stats.cache_hits == 0
        assert session.cache.stats.stores == 1

    def test_sample_cache_returns_same_object(self, session):
        core = session.parse(SRC)
        assert session.samples_for(core) is session.samples_for(core)

    def test_compile_payload_warm_hit_is_stored_bytes(self, tmp_path):
        import json

        session = ChassisSession(config=FAST, sample_config=SAMPLES, cache=str(tmp_path))
        cold, cached_cold = session.compile_payload(SRC, "c99")
        warm, cached_warm = session.compile_payload(SRC, "c99")
        assert (cached_cold, cached_warm) == (False, True)
        assert json.dumps(cold) == json.dumps(warm)

    def test_compile_many_through_session(self, tmp_path):
        session = ChassisSession(
            config=FAST, sample_config=SAMPLES, cache=CompileCache(tmp_path)
        )
        core = session.parse(SRC)
        outcomes = session.compile_many([(core, "c99"), (core, "arith")])
        assert [o.status for o in outcomes] == ["ok", "ok"]
        warm = session.compile_many([(core, "c99"), (core, "arith")])
        assert all(o.cached for o in warm)
        assert session.stats.batches == 2

    def test_submit_poll_result(self, session):
        handle = session.submit(SRC, "c99")
        assert handle.benchmark == "f" and handle.target == "c99"
        result = handle.result(timeout=120)
        assert handle.poll() == "ok" and handle.done()
        assert len(result.frontier) >= 1

    def test_submit_failure_is_captured_in_handle(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        bad = "(FPCore nopoints (x) :pre (and (< 2 x) (< x 1)) x)"
        handle = session.submit(bad, "c99")
        with pytest.raises(Exception):
            handle.result(timeout=120)
        assert handle.poll() == "failed"
        session.close()

    def test_closed_session_rejects_submit(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(SRC, "c99")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ChassisSession(jobs=0)
        with pytest.raises(ValueError):
            ChassisSession(timeout=0)

    def test_simulator_is_cached_and_cost_model_resolves_names(self, session, c99):
        assert session.simulator(c99) is session.simulator(c99)
        assert session.cost_model("c99").target is c99

    def test_targets_info_is_jsonable(self, session):
        import json

        info = session.targets_info()
        assert any(row["name"] == "c99" for row in info)
        json.dumps(info)


class TestDeprecatedShims:
    def test_compile_fpcore_warns_but_works(self, c99):
        from repro import compile_fpcore, parse_fpcore

        with pytest.warns(DeprecationWarning, match="ChassisSession"):
            result = compile_fpcore(parse_fpcore(SRC), c99, FAST, SAMPLES)
        assert len(result.frontier) >= 1

    def test_compile_many_warns_but_works(self):
        from repro import parse_fpcore
        from repro.service import compile_many

        with pytest.warns(DeprecationWarning, match="ChassisSession"):
            outcomes = compile_many(
                [(parse_fpcore(SRC), "c99")], config=FAST, sample_config=SAMPLES
            )
        assert outcomes[0].ok

    def test_jobspec_is_a_real_alias_not_a_string(self):
        from repro.service.api import JobSpec

        assert not isinstance(JobSpec, str)

    def test_progress_event_shapes_match_for_hits_and_fresh_jobs(self, tmp_path):
        """Cache-hit and fresh-job progress events share one constructor."""
        session = ChassisSession(
            config=FAST, sample_config=SAMPLES, cache=CompileCache(tmp_path)
        )
        core = session.parse(SRC)
        cold_events, warm_events = [], []
        session.compile_many([(core, "c99")], progress=cold_events.append)
        session.compile_many([(core, "c99")], progress=warm_events.append)
        assert not cold_events[0]["cached"] and warm_events[0]["cached"]
        assert set(cold_events[0]) == set(warm_events[0])
