"""Tests for the double-double middle rung (:mod:`repro.rival.backends.dd`).

Three layers of pinning, mirroring the rung's own soundness argument:

* the error-free transforms really are error-free (checked against exact
  rational arithmetic over specials, denormals and signed zeros);
* the dd transcendental kernels stay inside their declared margins
  (checked against mpmath at 200 bits on randomized points);
* the cascade keeps the acceptance-filter contract end to end — sampled
  points and exact values are bit-identical across ``numpy``, ``mpmath``
  and ``pool`` backends, serial or pooled, because dd only ever settles
  points whose enclosure already rounds uniquely.
"""

import math
import random
import struct
from fractions import Fraction

import numpy as np
import pytest

from repro.accuracy.sampler import SampleConfig, sample_core
from repro.api import ChassisSession, CompileConfig
from repro.benchsuite.suite import core_named
from repro.ir.parser import parse_expr
from repro.ir.types import F32, F64
from repro.rival.backends import make_backend
from repro.rival.backends.dd import (
    DoubleDoubleRung,
    dd_add,
    dd_cos,
    dd_exp,
    dd_expm1,
    dd_log,
    dd_mul,
    dd_sin,
    round_dd_to_f64,
    split,
    two_prod,
    two_sum,
)
from repro.rival.backends.pool_backend import (
    PoolOracleBackend,
    _resolve_min_pool_points,
)
from repro.rival.eval import RivalEvaluator

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)

#: Finite specials: signed zeros, denormals, powers straddling the
#: binade structure, and the format's extremes.
SPECIALS = (
    0.0, -0.0, 1.0, -1.0, 0.5, 2.0, 5e-324, -5e-324,
    2.2250738585072014e-308, 1e-300, -1e-300, 1e300,
    1.5, -0.1, 3.141592653589793, 123456789.0,
)


def _fresh(name):
    return make_backend(name, evaluator=RivalEvaluator())


def _bits(value):
    return struct.pack("<d", value)


class TestErrorFreeTransforms:
    def test_two_sum_exact_over_specials(self):
        for a in SPECIALS:
            for b in SPECIALS:
                hi, lo = two_sum(np.float64(a), np.float64(b))
                assert float(hi) == a + b
                # The pair represents a + b *exactly* as a rational.
                assert Fraction(float(hi)) + Fraction(float(lo)) == (
                    Fraction(a) + Fraction(b)
                )

    def test_two_prod_exact_over_specials(self):
        for a in SPECIALS:
            for b in SPECIALS:
                product = Fraction(a) * Fraction(b)
                hi, lo = two_prod(np.float64(a), np.float64(b))
                if not (math.isfinite(hi) and math.isfinite(lo)):
                    continue  # overflow in split/product: rung escalates
                got = Fraction(float(hi)) + Fraction(float(lo))
                if got == product:
                    continue
                # Denormal products lose the low limb to underflow; the
                # residual must stay under the rung's absolute floor.
                assert abs(float(got - product)) < 2.0 ** -1070

    def test_split_is_exact_and_flags_overflow(self):
        for a in (1.0, 1.5, 1e300 / 2**30, 5e-324, -7.25):
            hi, lo = split(np.float64(a))
            assert float(hi) + float(lo) == a
        hi, lo = split(np.float64(1e308))
        assert not math.isfinite(float(hi) + float(lo))

    def test_dd_add_mul_random_vs_fraction(self):
        rng = random.Random(5)
        for _ in range(200):
            a = rng.uniform(-1, 1) * 2.0 ** rng.uniform(-40, 40)
            b = rng.uniform(-1, 1) * 2.0 ** rng.uniform(-40, 40)
            s = dd_add((np.float64(a), np.float64(0)),
                       (np.float64(b), np.float64(0)))
            exact = Fraction(a) + Fraction(b)
            got = Fraction(float(s[0])) + Fraction(float(s[1]))
            if exact != 0:
                assert abs((got - exact) / exact) < Fraction(1, 2**100)
            p = dd_mul((np.float64(a), np.float64(0)),
                       (np.float64(b), np.float64(0)))
            exact = Fraction(a) * Fraction(b)
            got = Fraction(float(p[0])) + Fraction(float(p[1]))
            if exact != 0:
                assert abs((got - exact) / exact) < Fraction(1, 2**100)


class TestKernelAccuracy:
    """dd kernels vs mpmath at 200 bits: relative error must stay well
    inside the margins the interval layer widens by."""

    def _check(self, kernel, mp_fn, xs, rel_bound):
        import mpmath

        hi, lo = kernel((np.asarray(xs), np.zeros(len(xs))))
        if isinstance(hi, tuple):  # trig kernels return (value, bad, margin)
            (hi, lo) = hi
        with mpmath.mp.workprec(200):
            for x, h, l in zip(xs, np.atleast_1d(hi), np.atleast_1d(lo)):
                truth = mp_fn(mpmath.mpf(x))
                got = mpmath.mpf(float(h)) + mpmath.mpf(float(l))
                if truth == 0:
                    continue
                # Margin model: relative bound plus the 2**-1070 absolute
                # floor (ldexp quantizes the lo limb near the subnormal
                # boundary; the interval layer widens by _TINY for this).
                err = abs(got - truth)
                assert err < rel_bound * abs(truth) + mpmath.mpf(2) ** -1070, (
                    x, float(err / abs(truth))
                )

    def test_exp_within_margin(self):
        rng = random.Random(17)
        xs = [rng.uniform(-700, 700) for _ in range(300)]
        self._check(dd_exp, __import__("mpmath").exp, xs, 2.0 ** -92)

    def test_log_within_margin(self):
        import mpmath

        rng = random.Random(19)
        xs = [rng.uniform(0, 1) * 2.0 ** rng.uniform(-900, 900)
              for _ in range(300)]
        self._check(dd_log, mpmath.log, [x for x in xs if x > 0], 2.0 ** -88)

    def test_expm1_tiny_arguments_full_precision(self):
        import mpmath

        xs = [2.0 ** -e for e in range(1, 50)]
        self._check(dd_expm1, mpmath.expm1, xs, 2.0 ** -88)

    def test_exp_out_of_range_poisons(self):
        hi, lo = dd_exp((np.asarray([1000.0, -1000.0]), np.zeros(2)))
        assert not np.isfinite(hi).any() or not np.isfinite(lo).any()

    def test_sin_cos_within_margin(self):
        import mpmath

        rng = random.Random(23)
        xs = [rng.uniform(-1, 1) * 2.0 ** rng.uniform(-30, 40)
              for _ in range(300)]
        arr = (np.asarray(xs), np.zeros(len(xs)))
        for kernel, mp_fn in ((dd_sin, mpmath.sin), (dd_cos, mpmath.cos)):
            value, bad, margin = kernel(arr)
            with mpmath.mp.workprec(200):
                for i, x in enumerate(xs):
                    if bad[i]:
                        continue
                    truth = mp_fn(mpmath.mpf(x))
                    got = (mpmath.mpf(float(value[0][i]))
                           + mpmath.mpf(float(value[1][i])))
                    assert abs(got - truth) <= float(margin[i]) + 2.0 ** -1070


class TestRoundingRefusal:
    def test_unique_rounding_accepted(self):
        rounded, escalate = round_dd_to_f64(
            np.asarray([1.0]), np.asarray([1e-30])
        )
        assert rounded[0] == 1.0 and not escalate[0]

    def test_tie_escalates(self):
        # hi + lo exactly halfway between 1.0 and nextafter(1.0): the
        # rung cannot know which way the ladder's compound rounding
        # breaks the tie, so it must refuse to round.
        half_gap = (math.nextafter(1.0, 2.0) - 1.0) / 2
        rounded, escalate = round_dd_to_f64(
            np.asarray([1.0]), np.asarray([half_gap])
        )
        assert escalate[0]


class TestCascade:
    def test_dd_settles_cos_frac_residue(self):
        rung = DoubleDoubleRung()
        body = parse_expr("(/ (- 1 (cos x)) (* x x))")
        points = [{"x": 2.0 ** -e} for e in range(1, 40)]
        results = rung.evaluate(body, points, F64)
        assert results is not None
        settled = [r for r in results if r is not None]
        assert len(settled) == len(points)
        for r in settled:
            assert r.status == "ok" and 0.48 < r.value <= 0.5

    def test_dd_declines_non_f64(self):
        rung = DoubleDoubleRung()
        body = parse_expr("(* x x)")
        assert rung.evaluate(body, [{"x": 2.0}], F32) is None

    def test_numpy_backend_counts_dd_hits(self):
        backend = _fresh("numpy")
        body = parse_expr("(/ (- 1 (cos x)) (* x x))")
        points = [{"x": 2.0 ** -e} for e in range(1, 40)]
        backend.eval_batch(body, points, F64)
        counters = backend.counters()
        assert counters.dd_hits > 0
        assert counters.dd_hits <= counters.fastpath_hits
        assert (counters.fastpath_hits + counters.escalated_points
                == counters.batch_points)

    def test_dd_settled_values_match_ladder(self):
        rng = random.Random(31)
        body = parse_expr("(- (exp x) 1)")
        points = [
            {"x": rng.uniform(-1, 1) * 2.0 ** rng.uniform(-40, 9)}
            for _ in range(100)
        ]
        rung = DoubleDoubleRung()
        results = rung.evaluate(body, points, F64)
        ladder = _fresh("mpmath")
        settled = [(i, r) for i, r in enumerate(results) if r is not None]
        assert settled
        ref = ladder.eval_batch(body, [points[i] for i, _ in settled], F64)
        for (_, got), want in zip(settled, ref):
            assert got.status == want.status
            assert _bits(got.value) == _bits(want.value)


class TestMinBatchKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ORACLE_POOL_MIN_BATCH", raising=False)
        assert _resolve_min_pool_points() == 64

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE_POOL_MIN_BATCH", "7")
        assert _resolve_min_pool_points() == 7

    def test_constructor_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE_POOL_MIN_BATCH", "7")
        backend = PoolOracleBackend(_fresh("numpy"), min_pool_points=3)
        assert backend.min_pool_points == 3

    def test_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE_POOL_MIN_BATCH", "many")
        with pytest.raises(ValueError, match="REPRO_ORACLE_POOL_MIN_BATCH"):
            _resolve_min_pool_points()

    def test_floor_of_one(self):
        assert _resolve_min_pool_points(0) == 1


def _sample_key(samples):
    points = tuple(
        tuple(sorted((k, _bits(v)) for k, v in point.items()))
        for point in samples.train + samples.test
    )
    exacts = tuple(_bits(v) for v in samples.train_exact + samples.test_exact)
    return (points, exacts, samples.acceptance, len(samples.train))


class TestEndToEndIdentity:
    """Sampling through the cascade and through pooled sampler iterations
    must be bit-identical to the mpmath ladder."""

    @pytest.mark.parametrize("name", ["cos-frac", "expm1-naive"])
    def test_backends_bit_identical(self, name):
        core = core_named(name)
        config = SampleConfig(n_train=16, n_test=16)
        want = _sample_key(sample_core(core, config, oracle=_fresh("mpmath")))
        assert _sample_key(
            sample_core(core, config, oracle=_fresh("numpy"))
        ) == want

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_pooled_sampling_bit_identical(self, jobs):
        config = SampleConfig(n_train=16, n_test=16)
        cores = [core_named(n) for n in ("cos-frac", "expm1-naive")]
        want = [
            _sample_key(sample_core(c, config, oracle=_fresh("mpmath")))
            for c in cores
        ]
        with ChassisSession(
            config=FAST, sample_config=SAMPLES, jobs=jobs,
            oracle_backend="pool",
        ) as session:
            got = [
                _sample_key(sample_core(c, config, oracle=session.oracle))
                for c in cores
            ]
        assert got == want
