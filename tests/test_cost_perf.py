"""Tests for cost models, cost opportunity, and the performance simulator."""

import math

import pytest

from repro.cost import NaiveCostModel, TargetCostModel, cost_opportunities, infer_types
from repro.ir import F32, F64, parse_expr
from repro.perf import PerfSimulator


def _prog(src, target):
    return parse_expr(src, known_ops=set(target.operators))


class TestCostModel:
    def test_sum_of_operator_costs(self, avx):
        model = TargetCostModel(avx)
        prog = _prog("(mul.f64 x y)", avx)
        expected = avx.operator("mul.f64").cost + 2 * avx.variable_cost
        assert model.program_cost(prog) == expected

    def test_literal_cost(self, avx):
        model = TargetCostModel(avx)
        assert model.program_cost(_prog("(mul.f64 x 2)", avx)) == pytest.approx(
            avx.operator("mul.f64").cost + avx.variable_cost + 1.0
        )

    def test_scalar_if_takes_max_branch(self, c99):
        model = TargetCostModel(c99)
        prog = _prog("(if (< x 0) (exp.f64 x) x)", c99)
        cheap_branch = model.program_cost(_prog("x", c99))
        pricey_branch = model.program_cost(_prog("(exp.f64 x)", c99))
        cond = model.program_cost(_prog("x", c99)) * 2 + c99.if_cost  # x < 0
        total = model.program_cost(prog)
        assert total == pytest.approx(cond + max(cheap_branch, pricey_branch) + c99.if_cost)

    def test_vector_if_takes_both_branches(self, avx):
        model = TargetCostModel(avx)
        prog = _prog("(if (< x 0) (sqrt.f64 x) x)", avx)
        scalar_like = (
            2 * avx.variable_cost + avx.if_cost  # comparison
            + avx.operator("sqrt.f64").cost + avx.variable_cost
            + avx.variable_cost
            + avx.if_cost
        )
        assert model.program_cost(prog) == pytest.approx(scalar_like)

    def test_unknown_operator_raises(self, arith):
        model = TargetCostModel(arith)
        with pytest.raises(KeyError):
            model.program_cost(parse_expr("(exp.f64 x)", known_ops={"exp.f64"}))

    def test_supports_program(self, arith):
        model = TargetCostModel(arith)
        assert model.supports_program(_prog("(add.f64 x y)", arith))
        assert not model.supports_program(parse_expr("(exp.f64 x)", known_ops={"exp.f64"}))

    def test_typed_protocol(self, avx):
        model = TargetCostModel(avx)
        assert model.operator_signature("rcp.f32") == ((F32,), F32)
        assert model.operator_signature("+") is None
        assert set(model.literal_types()) == {F32, F64}

    def test_naive_model_constants(self):
        assert NaiveCostModel.ARITH_COST == 1.0
        assert NaiveCostModel.CALL_COST == 100.0


class TestInferTypes:
    def test_mixed_types(self, avx):
        prog = _prog("(cast.f64 (rcp.f32 (cast.f32 x)))", avx)
        types = infer_types(prog, avx, F64)
        assert types[()] == F64
        assert types[(0,)] == F32
        assert types[(0, 0)] == F32
        assert types[(0, 0, 0)] == F64


class TestCostOpportunity:
    def test_paper_worked_example(self, avx):
        """Section 5.2: in 1 + x/y the division carries the opportunity."""
        prog = _prog("(add.f32 1 (div.f32 x y))", avx)
        opps = cost_opportunities(prog, avx, ty=F32)
        assert opps[(1,)] > 0  # the division
        # division opportunity ~= div cost - (mul + rcp)
        assert opps[(1,)] == pytest.approx(
            avx.operator("div.f32").cost
            - avx.operator("mul.f32").cost
            - avx.operator("rcp.f32").cost,
            abs=1.0,
        )

    def test_no_opportunity_when_already_minimal(self, arith):
        prog = _prog("(add.f64 x y)", arith)
        opps = cost_opportunities(prog, arith)
        assert all(v == 0.0 for v in opps.values())

    def test_children_not_double_credited(self, avx):
        prog = _prog("(add.f32 1 (div.f32 x y))", avx)
        opps = cost_opportunities(prog, avx, ty=F32)
        # The root must not also claim the division's savings.
        assert opps[()] <= opps[(1,)] + avx.operator("fma.f32").cost + 2

    def test_fdlibm_log_pair_opportunity(self, fdlibm):
        prog = _prog(
            "(sub.f64 (log.f64 (add.f64 1 x)) (log.f64 (sub.f64 1 x)))", fdlibm
        )
        opps = cost_opportunities(prog, fdlibm)
        assert opps[()] > 10  # log1pmd replaces two logs


class TestPerfSimulator:
    def test_deterministic(self, c99, small_samples):
        sim = PerfSimulator(c99)
        prog = _prog("(add.f64 x 1)", c99)
        a = sim.run_time(prog, small_samples.test)
        assert a == sim.run_time(prog, small_samples.test)

    def test_tracks_latency_ordering(self, c99, small_samples):
        sim = PerfSimulator(c99)
        cheap = sim.run_time(_prog("(add.f64 x 1)", c99), small_samples.test)
        pricey = sim.run_time(_prog("(pow.f64 x x)", c99), small_samples.test)
        assert pricey > cheap

    def test_interpreter_overhead(self, python_target, c99, small_samples):
        prog64 = "(add.f64 x 1)"
        py = PerfSimulator(python_target).run_time(
            _prog(prog64, python_target), small_samples.test
        )
        c = PerfSimulator(c99).run_time(_prog(prog64, c99), small_samples.test)
        assert py > 5 * c

    def test_denormal_penalty(self, arith):
        sim = PerfSimulator(arith)
        prog = _prog("(mul.f64 x x)", arith)
        normal = sim.run_time(prog, [{"x": 1.5}])
        denormal = sim.run_time(prog, [{"x": 1e-310}])
        assert denormal > 3 * normal

    def test_python_división_by_zero_exception(self, python_target):
        sim = PerfSimulator(python_target)
        prog = _prog("(div.f64 x y)", python_target)
        ok = sim.run_time(prog, [{"x": 1.0, "y": 2.0}])
        crash = sim.run_time(prog, [{"x": 1.0, "y": 0.0}])
        assert crash > ok + 100

    def test_vector_if_pays_both_branches(self, avx, c99):
        src = "(if (< x 0) (sqrt.f64 (sub.f64 0 x)) (sqrt.f64 x))"
        points = [{"x": 4.0}]
        vec = PerfSimulator(avx).run_time(_prog(src, avx), points)
        single_sqrt = PerfSimulator(avx).run_time(_prog("(sqrt.f64 x)", avx), points)
        # Masked execution runs both branches; with ILP they overlap
        # partially, so the cost exceeds one branch substantially but can
        # stay under the full serial 2x.
        assert vec > 1.5 * single_sqrt

    def test_missing_operator_raises(self, arith):
        sim = PerfSimulator(arith)
        with pytest.raises(KeyError):
            sim.run_time(parse_expr("(exp.f64 x)", known_ops={"exp.f64"}), [{"x": 1.0}])

    def test_operator_run_time_for_autotune(self, c99):
        sim = PerfSimulator(c99)
        add = sim.operator_run_time("add.f64", [(1.0, 2.0)] * 4)
        pow_time = sim.operator_run_time("pow.f64", [(1.5, 2.5)] * 4)
        assert pow_time > add
