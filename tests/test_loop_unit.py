"""Unit tests for the improvement loop's pieces (localize, score, work)."""

import math

import pytest

from repro.accuracy import SampleConfig, sample_core
from repro.core import CompileConfig
from repro.core.loop import ImprovementLoop
from repro.core.transcribe import transcribe
from repro.ir import parse_expr, parse_fpcore


@pytest.fixture(scope="module")
def loop(fdlibm):
    core = parse_fpcore(
        "(FPCore acoth (x) :pre (and (< 0.001 (fabs x)) (< (fabs x) 0.999))"
        " (* 1/2 (log (/ (+ 1 x) (- 1 x)))))"
    )
    samples = sample_core(core, SampleConfig(n_train=16, n_test=16))
    return ImprovementLoop(
        core, fdlibm, samples, CompileConfig(iterations=1, localize_points=6)
    )


class TestScore:
    def test_candidate_fields(self, loop):
        program = transcribe(loop.core.body, loop.target)
        candidate = loop.score(program, "initial")
        assert candidate.origin == "initial"
        assert len(candidate.point_errors) == len(loop.samples.train)
        assert candidate.cost > 0
        assert candidate.error == pytest.approx(
            sum(candidate.point_errors) / len(candidate.point_errors)
        )

    def test_unsupported_program_scores_worst(self, loop):
        program = parse_expr("(frob.f64 x)", known_ops={"frob.f64"})
        candidate = loop.score(program, "bad")
        assert candidate.cost == float("inf")
        assert candidate.error == 64.0


class TestLocalize:
    def test_returns_paths_into_program(self, loop):
        program = transcribe(loop.core.body, loop.target)
        paths = loop.localize(program)
        assert paths
        for path in paths:
            program.at(path)  # must not raise

    def test_root_included_for_small_programs(self, loop):
        program = transcribe(loop.core.body, loop.target)
        assert () in loop.localize(program)


class TestVariants:
    def test_variants_substitutable(self, loop):
        program = transcribe(loop.core.body, loop.target)
        paths = loop.localize(program)
        variants = loop.variants_for(program, paths[0])
        assert variants
        for variant in variants[:5]:
            rebuilt = program.replace_at(paths[0], variant)
            assert rebuilt.free_vars() <= program.free_vars()

    def test_series_disabled(self, fdlibm):
        core = parse_fpcore("(FPCore f (x) :pre (< 0.01 x 1) (- (exp x) 1))")
        samples = sample_core(core, SampleConfig(n_train=8, n_test=8))
        no_series = ImprovementLoop(
            core, fdlibm, samples,
            CompileConfig(iterations=1, enable_series=False, localize_points=4),
        )
        program = transcribe(core.body, fdlibm)
        variants = no_series.variants_for(program, ())
        # with series disabled, all variants come from the e-graph and are
        # mathematically-equivalent forms, not truncated polynomials
        assert all("expm1" in str(v) or "exp" in str(v) or "log" in str(v)
                   for v in variants)


class TestWorkSelection:
    def test_expands_frontier_extremes(self, loop):
        frontier = loop.run()
        # after a run, everything the loop expanded is recorded
        assert loop._expanded
        # frontier holds mutually non-dominated candidates only
        items = list(frontier)
        for a in items:
            for b in items:
                if a is not b:
                    assert not a.dominates(b)
