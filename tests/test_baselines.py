"""Tests for the Herbie and Clang baselines."""

import math

import pytest

from repro.accuracy import SampleConfig, sample_core
from repro.baselines import (
    CONFIGS,
    compile_all_configs,
    compile_clang,
    herbie_frontier_on_target,
    herbie_ir_target,
    lower_to_target,
    run_herbie,
)
from repro.core import CompileConfig
from repro.cost import NaiveCostModel
from repro.ir import parse_expr, parse_fpcore

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)


class TestHerbieIRTarget:
    def test_naive_costs(self):
        ir = herbie_ir_target()
        assert ir.operator("add.f64").cost == NaiveCostModel.ARITH_COST
        assert ir.operator("exp.f64").cost == NaiveCostModel.CALL_COST
        assert ir.operator("sqrt.f64").cost == NaiveCostModel.CALL_COST

    def test_full_operator_set(self):
        ir = herbie_ir_target()
        for op in ("sin.f64", "log1p.f64", "atan2.f64", "hypot.f64"):
            assert ir.supports(op)

    def test_target_agnostic_flag(self):
        assert "naive" in herbie_ir_target().cost_source


class TestRunHerbie:
    def test_improves_cancellation(self, sqrt_sub_core, small_samples):
        from repro.accuracy import score_program
        from repro.baselines.herbie import herbie_ir_target
        from repro.core import transcribe

        ir = herbie_ir_target()
        naive = transcribe(sqrt_sub_core.body, ir)
        input_error = score_program(
            naive, ir, small_samples.train, small_samples.train_exact
        )
        frontier = run_herbie(sqrt_sub_core, small_samples, FAST)
        assert len(frontier) >= 1
        assert frontier.best_error().error < input_error / 2  # repaired

    def test_lower_transcribe_mode(self, c99, sqrt_sub_core, small_samples):
        frontier = run_herbie(sqrt_sub_core, small_samples, FAST)
        output = lower_to_target(
            frontier.best_error().program, sqrt_sub_core, c99, small_samples
        )
        assert output is not None
        assert output.mode == "transcribe"  # C has everything

    def test_lower_discards_on_arith(self, arith, small_samples):
        core = parse_fpcore(
            "(FPCore (x) :pre (< 0.1 x 10) (sin x))"
        )
        ir = herbie_ir_target()
        program = parse_expr("(sin.f64 x)", known_ops=set(ir.operators))
        assert lower_to_target(program, core, arith, small_samples) is None

    def test_herbie_frontier_on_target(self, c99, sqrt_sub_core, small_samples):
        frontier, stats = herbie_frontier_on_target(
            sqrt_sub_core, c99, small_samples, FAST
        )
        assert len(frontier) >= 1
        assert stats["transcribe"] + stats["desugar"] + stats["discard"] >= 1


class TestClang:
    def setup_method(self):
        self.core = parse_fpcore(
            "(FPCore poly (x) :pre (< -10 x 10)"
            " (+ (* 2 (* 3 x)) (* x 1)))"
        )

    def test_twelve_configs(self, c99):
        outputs = compile_all_configs(self.core, c99)
        assert len(outputs) == 12
        assert len(CONFIGS) == 12

    def test_O0_is_identity(self, c99):
        from repro.core import transcribe

        out = compile_clang(self.core, c99, "-O0")
        assert out.program == transcribe(self.core.body, c99)
        assert out.time_factor > 1.5  # no register allocation

    def test_identity_cleanup_at_O2(self, c99):
        out = compile_clang(self.core, c99, "-O2")
        # (* x 1) must be gone
        assert "(mul.f64 x 1)" not in str(out.program).replace("'", "")

    def test_constant_folding(self, c99):
        core = parse_fpcore("(FPCore (x) (* (+ 1 2) x))")
        out = compile_clang(core, c99, "-O2")
        text = str(out.program)
        assert "Num(3" in text or "3" in text
        assert "add" not in text  # 1+2 folded away

    def test_fast_math_reduces_cost_not_accuracy_guaranteed(
        self, c99, sqrt_sub_core, small_samples
    ):
        from repro.accuracy import score_program
        from repro.cost import TargetCostModel

        model = TargetCostModel(c99)
        precise = compile_clang(sqrt_sub_core, c99, "-O2", fast_math=False)
        fast = compile_clang(sqrt_sub_core, c99, "-O2", fast_math=True)
        assert model.program_cost(fast.program) <= model.program_cost(precise.program)
        # and precise mode preserves the (buggy) float semantics exactly
        assert precise.program == compile_clang(sqrt_sub_core, c99, "-O3").program

    def test_level_factors_ordered(self):
        from repro.baselines.clang import LEVEL_FACTORS

        assert LEVEL_FACTORS["-O0"] > LEVEL_FACTORS["-O1"] > LEVEL_FACTORS["-O3"]

    def test_unknown_level_rejected(self, c99):
        with pytest.raises(ValueError):
            compile_clang(self.core, c99, "-O9")

    def test_fast_math_output_still_supported(self, c99, sqrt_sub_core):
        from repro.cost import TargetCostModel

        out = compile_clang(sqrt_sub_core, c99, "-O2", fast_math=True)
        assert TargetCostModel(c99).supports_program(out.program)
