"""Unit tests for S-expression and FPCore parsing."""

from fractions import Fraction

import pytest

from repro.ir import (
    App,
    Const,
    Num,
    ParseError,
    Var,
    parse_expr,
    parse_fpcore,
    parse_fpcores,
    parse_number,
    parse_sexpr,
    parse_sexprs,
)


class TestTokenizerAndReader:
    def test_nested(self):
        assert parse_sexpr("(a (b c) d)") == ["a", ["b", "c"], "d"]

    def test_brackets_as_parens(self):
        assert parse_sexpr("[a [b] c]") == ["a", ["b"], "c"]

    def test_comments_ignored(self):
        forms = parse_sexprs("; header\n(a) ; trailing\n(b)")
        assert forms == [["a"], ["b"]]

    def test_strings(self):
        assert parse_sexpr('(:name "hello world")') == [":name", '"hello world"']

    def test_unbalanced_raises(self):
        with pytest.raises(ParseError):
            parse_sexpr("(a (b)")
        with pytest.raises(ParseError):
            parse_sexpr(")")

    def test_multiple_when_one_expected(self):
        with pytest.raises(ParseError):
            parse_sexpr("(a) (b)")


class TestNumbers:
    @pytest.mark.parametrize(
        "token, expected",
        [
            ("1", Fraction(1)),
            ("-2", Fraction(-2)),
            ("0.5", Fraction(1, 2)),
            ("1e3", Fraction(1000)),
            ("1.5e-2", Fraction(3, 200)),
            ("1/3", Fraction(1, 3)),
            ("-7/2", Fraction(-7, 2)),
        ],
    )
    def test_numeric(self, token, expected):
        assert parse_number(token) == expected

    @pytest.mark.parametrize("token", ["x", "sqrt", "1.2.3", "a/b"])
    def test_non_numeric(self, token):
        assert parse_number(token) is None


class TestExprParsing:
    def test_basic(self):
        assert parse_expr("(+ x 1)") == App("+", (Var("x"), Num(1)))

    def test_constants(self):
        assert parse_expr("PI") == Const("PI")
        assert parse_expr("E") == Const("E")

    def test_unary_minus_is_neg(self):
        assert parse_expr("(- x)") == App("neg", (Var("x"),))

    def test_variadic_arithmetic(self):
        assert parse_expr("(+ a b c)") == App("+", (App("+", (Var("a"), Var("b"))), Var("c")))

    def test_chained_comparison(self):
        out = parse_expr("(< 0 x 1)")
        assert out == App(
            "and", (App("<", (Num(0), Var("x"))), App("<", (Var("x"), Num(1))))
        )

    def test_variadic_and(self):
        out = parse_expr("(and TRUE TRUE FALSE)")
        assert out.op == "and"

    def test_let_expansion(self):
        out = parse_expr("(let ((t (* x x))) (+ t t))")
        assert out == parse_expr("(+ (* x x) (* x x))")

    def test_let_star_sequential(self):
        out = parse_expr("(let* ((a (+ x 1)) (b (* a a))) b)")
        assert out == parse_expr("(* (+ x 1) (+ x 1))")

    def test_unknown_operator_raises(self):
        with pytest.raises(ParseError):
            parse_expr("(frobnicate x)")

    def test_known_ops_extension(self):
        out = parse_expr("(rcp.f32 x)", known_ops={"rcp.f32"})
        assert out == App("rcp.f32", (Var("x"),))

    def test_if(self):
        out = parse_expr("(if (< x 0) (- x) x)")
        assert out.op == "if"
        assert len(out.args) == 3


class TestFPCoreParsing:
    def test_minimal(self):
        core = parse_fpcore("(FPCore (x) (+ x 1))")
        assert core.arguments == ("x",)
        assert core.precision == "binary64"
        assert core.pre is None

    def test_named_with_props(self):
        core = parse_fpcore(
            '(FPCore ident (x y) :name "my bench" :precision binary32 :pre (< x y) (- y x))'
        )
        assert core.name == "ident"
        assert core.precision == "binary32"
        assert core.pre == App("<", (Var("x"), Var("y")))
        assert core.properties["name"] == "my bench"

    def test_annotated_argument(self):
        core = parse_fpcore("(FPCore ((! :precision binary32 x)) (+ x 1))")
        assert core.arguments == ("x",)

    def test_unbound_variable_rejected(self):
        with pytest.raises(ValueError):
            parse_fpcore("(FPCore (x) (+ x q))")

    def test_missing_body_rejected(self):
        with pytest.raises(ParseError):
            parse_fpcore("(FPCore (x) :name \"no body\")")

    def test_parse_many(self):
        cores = parse_fpcores("(FPCore (x) x) (FPCore (y) (* y y))")
        assert len(cores) == 2

    def test_roundtrip_through_text(self):
        core = parse_fpcore(
            "(FPCore f (x) :pre (and (< 0 x) (< x 1)) (sqrt (- 1 x)))"
        )
        again = parse_fpcore(core.to_sexpr())
        assert again.body == core.body
        assert again.arguments == core.arguments
        assert again.pre == core.pre
