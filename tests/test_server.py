"""Tests for the ``repro serve`` HTTP front-end (one warm session)."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.accuracy.sampler import SampleConfig
from repro.api import ChassisSession, CompileConfig, create_server

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)

SRC = "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"
SRC2 = "(FPCore g (x) :pre (< 0.1 x 1) (+ (* x x) 1))"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    session = ChassisSession(
        config=FAST,
        sample_config=SAMPLES,
        cache=str(tmp_path_factory.mktemp("serve-cache")),
    )
    server = create_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _get(url):
    with urllib.request.urlopen(url, timeout=300) as response:
        return response.status, dict(response.headers), response.read()


def _post(url, obj, raw: bytes | None = None):
    data = raw if raw is not None else json.dumps(obj).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return response.status, dict(response.headers), response.read()


class TestCompileEndpoint:
    def test_second_identical_request_is_warm_and_byte_identical(self, base_url):
        body = {"core": SRC, "target": "c99"}
        status1, headers1, bytes1 = _post(base_url + "/compile", body)
        status2, headers2, bytes2 = _post(base_url + "/compile", body)
        assert status1 == status2 == 200
        assert headers1["X-Repro-Cached"] == "0"
        assert headers2["X-Repro-Cached"] == "1"
        # the warm response is served from the stored payload: byte-identical
        assert bytes1 == bytes2
        payload = json.loads(bytes2)
        assert payload["status"] == "ok"
        assert payload["benchmark"] == "f" and payload["target"] == "c99"
        assert payload["result"]["frontier"]

    def test_knob_overrides_change_the_cache_key(self, base_url):
        body = {"core": SRC, "target": "c99", "points": 6}
        _status, headers, _bytes = _post(base_url + "/compile", body)
        assert headers["X-Repro-Cached"] == "0"  # different sample config

    def test_infeasible_pair_is_failed_data_not_an_error(self, base_url):
        bad = "(FPCore nopoints (x) :pre (and (< 2 x) (< x 1)) x)"
        status, _headers, body = _post(
            base_url + "/compile", {"core": bad, "target": "c99"}
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "failed"
        assert payload["error_type"] == "SamplingError"

    def test_concurrent_clients(self, base_url):
        def one(source):
            status, _headers, body = _post(
                base_url + "/compile", {"core": source, "target": "c99"}
            )
            return status, json.loads(body)

        with ThreadPoolExecutor(max_workers=4) as pool:
            replies = list(pool.map(one, [SRC, SRC2, SRC, SRC2, SRC, SRC2]))
        assert all(status == 200 for status, _payload in replies)
        by_benchmark = {payload["benchmark"] for _status, payload in replies}
        assert by_benchmark == {"f", "g"}
        # identical requests agree exactly, concurrent or not
        f_results = [p["result"] for _s, p in replies if p["benchmark"] == "f"]
        assert all(r == f_results[0] for r in f_results)


class TestMalformedRequests:
    def test_invalid_json_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url + "/compile", None, raw=b"{not json")
        assert excinfo.value.code == 400
        assert "not valid JSON" in json.loads(excinfo.value.read())["error"]

    def test_missing_field_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url + "/compile", {"target": "c99"})
        assert excinfo.value.code == 400

    def test_wrong_field_type_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url + "/compile", {"core": 42, "target": "c99"})
        assert excinfo.value.code == 400

    def test_unknown_target_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url + "/compile", {"core": SRC, "target": "nonesuch"})
        assert excinfo.value.code == 400
        assert "unknown target" in json.loads(excinfo.value.read())["error"]

    def test_unparseable_core_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url + "/compile", {"core": "(FPCore", "target": "c99"})
        assert excinfo.value.code == 400

    def test_error_responses_close_the_connection(self, server):
        """A 4xx without a drained body must not desync keep-alive reuse."""
        import socket

        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            body = b'{"x": 1}'
            sock.sendall(
                (
                    f"POST /nope HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode() + body
            )
            sock.sendall(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
            received = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                received += chunk
        assert b"Connection: close" in received
        # the leftover body must never be parsed as a second request line
        assert b"Bad request syntax" not in received

    def test_unparseable_score_program_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                base_url + "/score",
                {"core": SRC, "target": "c99", "program": "(bogus x"},
            )
        assert excinfo.value.code == 400
        assert "unparseable program" in json.loads(excinfo.value.read())["error"]

    def test_unknown_endpoint_is_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base_url + "/nonesuch", {})
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base_url + "/nonesuch")
        assert excinfo.value.code == 404


class TestOtherEndpoints:
    def test_health_reports_session_and_cache_stats(self, base_url):
        status, _headers, body = _get(base_url + "/health")
        payload = json.loads(body)
        assert status == 200 and payload["ok"] is True
        assert "compiles" in payload["stats"]
        assert "hits" in payload["cache"]

    def test_targets_lists_registry(self, base_url):
        _status, _headers, body = _get(base_url + "/targets")
        names = {row["name"] for row in json.loads(body)["targets"]}
        assert {"c99", "avx", "fdlibm"} <= names

    def test_batch_rows_share_the_report_shape(self, base_url):
        status, _headers, body = _post(
            base_url + "/batch", {"cores": [SRC2], "targets": ["c99", "arith"]}
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["summary"]["ok"] == 2
        for row in payload["outcomes"]:
            assert list(row)[:4] == ["benchmark", "target", "fingerprint", "status"]
            assert row["frontier"] and "program" in row["frontier"][0]

    def test_score_endpoint(self, base_url):
        status, _headers, body = _post(
            base_url + "/score", {"core": SRC, "target": "c99"}
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["benchmark"] == "f"
        assert payload["error_bits"] >= 0.0
