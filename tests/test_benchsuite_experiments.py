"""Tests for the benchmark suite and the experiment harness."""

import math

import pytest

from repro.benchsuite import core_named, curated_suite, generate_core, generate_suite, suite
from repro.experiments import (
    JointPoint,
    geomean,
    joint_pareto,
    pareto_filter,
    speedup_at_matched_accuracy,
    targets_table,
)
from repro.targets import all_targets


class TestCorpus:
    def test_size(self):
        assert len(curated_suite()) >= 40

    def test_all_named_uniquely(self):
        names = [c.name for c in curated_suite()]
        assert all(names)
        assert len(names) == len(set(names))

    def test_case_studies_present(self):
        for name in ("quadratic-mod", "ellipse-angle", "acoth"):
            assert core_named(name) is not None

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            core_named("not-a-benchmark")

    def test_filter_by_operators(self):
        arith_ops = {"+", "-", "*", "/", "neg", "sqrt", "fabs"}
        selected = suite(operators_subset=arith_ops)
        assert 0 < len(selected) < len(curated_suite())
        for core in selected:
            assert core.body.operators() <= arith_ops

    def test_filter_by_vars(self):
        for core in suite(max_vars=1):
            assert len(core.arguments) == 1

    def test_max_benchmarks(self):
        assert len(suite(max_benchmarks=5)) == 5


class TestGenerator:
    def test_deterministic(self):
        assert generate_core(42).body == generate_core(42).body

    def test_distinct_seeds(self):
        assert generate_core(1).body != generate_core(2).body

    def test_all_variables_used(self):
        core = generate_core(7, n_vars=3)
        assert core.body.free_vars() == {"x0", "x1", "x2"}

    def test_suite_scales(self):
        cores = generate_suite(20)
        assert len(cores) == 20
        assert len({c.name for c in cores}) == 20

    def test_generated_cores_sampleable(self):
        from repro.accuracy import SampleConfig, SamplingError, sample_core

        ok = 0
        for core in generate_suite(6):
            try:
                sample_core(core, SampleConfig(n_train=4, n_test=4, max_batches=8))
                ok += 1
            except SamplingError:
                continue
        assert ok >= 4  # most generated benchmarks are usable


class TestParetoAggregation:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])

    def test_pareto_filter(self):
        entries = [(1.0, 60.0), (2.0, 40.0), (0.5, 70.0), (1.5, 30.0)]
        kept = pareto_filter(entries)
        assert (1.5, 30.0) not in kept  # dominated by (2.0, 40.0)
        assert (2.0, 40.0) in kept and (0.5, 70.0) in kept

    def test_joint_pareto_single_benchmark(self):
        curve = joint_pareto([[(1.0, 60.0), (3.0, 30.0)]])
        assert any(p.speedup == pytest.approx(3.0) for p in curve)
        assert any(p.total_accuracy == pytest.approx(60.0) for p in curve)

    def test_joint_pareto_sums_accuracy(self):
        curve = joint_pareto([[(1.0, 60.0)], [(1.0, 50.0)]])
        assert curve[-1].total_accuracy == pytest.approx(110.0)

    def test_joint_pareto_geomeans_speedup(self):
        curve = joint_pareto([[(2.0, 60.0)], [(8.0, 60.0)]])
        assert any(p.speedup == pytest.approx(4.0) for p in curve)

    def test_empty(self):
        assert joint_pareto([]) == []
        assert joint_pareto([[]]) == []

    def test_matched_accuracy_speedup(self):
        ours = [(4.0, 40.0), (1.5, 60.0)]
        herbie = [(2.0, 40.0), (1.0, 55.0)]
        matched = dict(speedup_at_matched_accuracy(ours, herbie))
        assert matched[40.0] == pytest.approx(2.0)
        assert matched[55.0] == pytest.approx(1.5)

    def test_matched_accuracy_tails(self):
        # we can't reach herbie's best accuracy: ratio computed against our
        # most accurate program (may be < 1: the paper's tails)
        ours = [(4.0, 30.0)]
        herbie = [(2.0, 60.0)]
        (_acc, ratio), = speedup_at_matched_accuracy(ours, herbie)
        assert ratio == pytest.approx(2.0)


class TestReports:
    def test_targets_table_lists_all_nine(self):
        table = targets_table(all_targets())
        for name in ("arith", "avx", "c99", "python", "julia", "numpy", "vdt", "fdlibm"):
            assert name in table
        assert "Fog [20]" in table
        assert "auto-tune" in table
