"""The session-owned persistent worker pool: reuse, routing, accounting.

Pins down the amortization contract from the roadmap: consecutive batches
(including serve ``/batch`` requests) must reuse the *same* warm worker
processes instead of rebuilding a pool per call, ``submit`` must route
registry-target jobs through those workers, and batch outcomes must land
in the session stats ``/health`` reports.
"""

import gc
import json
import threading
import urllib.request

import pytest

from repro.accuracy.sampler import SampleConfig
from repro.api import ChassisSession, CompileConfig, WorkerPool, create_server
from repro.benchsuite import core_named

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)

SRC = "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"
SRC2 = "(FPCore g (x) :pre (< 0.1 x 1) (+ (* x x) 1))"


@pytest.fixture(scope="module")
def pool_session():
    session = ChassisSession(config=FAST, sample_config=SAMPLES, jobs=2)
    yield session
    session.close()


class TestPoolReuse:
    def test_consecutive_batches_reuse_worker_pids(self, pool_session):
        specs = [(core_named("sqrt-sub"), "c99"), (core_named("logistic"), "c99")]
        first = pool_session.compile_many(specs)
        pool = pool_session.worker_pool()
        assert pool is not None
        pids = pool.worker_pids()
        generation = pool.generation
        assert len(pids) == 2 and generation == 1
        second = pool_session.compile_many(
            [(core_named("sqrt-sub"), "arith"), (core_named("logistic"), "arith")]
        )
        assert all(o.ok for o in first + second)
        # same processes, no rebuild: the whole point of the pool
        assert pool.worker_pids() == pids
        assert pool.generation == generation

    def test_single_job_batches_use_the_warm_pool(self, pool_session):
        """With warm workers there is no 'too small to pool' batch."""
        pool = pool_session.worker_pool()
        generation = pool.generation
        (outcome,) = pool_session.compile_many([(core_named("logistic"), "fdlibm")])
        assert outcome.ok
        assert pool.generation == generation  # reused, not rebuilt

    def test_pooled_submit_runs_in_worker_processes(self, pool_session):
        handles = [
            pool_session.submit(core_named("sqrt-sub"), "vdt"),
            pool_session.submit(core_named("logistic"), "vdt"),
        ]
        results = [handle.result(timeout=300) for handle in handles]
        assert all(len(result.frontier) > 0 for result in results)
        assert all(handle.poll() == "ok" for handle in handles)

    def test_config_change_recycles_the_pool(self, pool_session):
        pool = pool_session.worker_pool()
        generation = pool.generation
        other = CompileConfig(iterations=0, localize_points=6, max_variants=12)
        (outcome,) = pool_session.compile_many(
            [(core_named("sqrt-sub"), "c99")], config=other
        )
        assert outcome.ok
        assert pool.generation == generation + 1

    def test_jobs_1_session_has_no_pool(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES, jobs=1)
        assert session.worker_pool() is None
        assert session.pool_info() is None

    def test_lazy_creation(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES, jobs=2)
        pool = session.worker_pool()
        assert pool is not None
        # no batch has run: no processes yet
        assert pool.worker_pids() == [] and pool.generation == 0
        session.close()

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(2)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.run_batch([], FAST, SAMPLES)


class TestStatsAccounting:
    def test_batch_outcomes_fold_into_session_stats(self, tmp_path):
        """compile() and compile_many() must agree on /health accounting;
        batch failures and cache hits used to be invisible."""
        from repro.ir import parse_fpcore

        session = ChassisSession(
            config=FAST, sample_config=SAMPLES, cache=str(tmp_path)
        )
        bad = parse_fpcore("(FPCore nopoints (x) :pre (and (< 2 x) (< x 1)) x)")
        outcomes = session.compile_many(
            [(core_named("sqrt-sub"), "arith"), (bad, "arith")]
        )
        assert [o.status for o in outcomes] == ["ok", "failed"]
        assert session.stats.compiles == 1
        assert session.stats.failures == 1
        # a warm repeat is a cache hit in the same counters /compile uses
        session.compile_many([(core_named("sqrt-sub"), "arith")])
        assert session.stats.cache_hits == 1
        assert session.stats.batches == 2
        session.close()

    def test_duplicate_concurrent_sampling_samples_once(self):
        """samples_for re-checks the LRU under the oracle lock, so a
        contended duplicate records a hit instead of re-sampling."""
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        core = core_named("sqrt-sub")
        barrier = threading.Barrier(4)
        results = []

        def sample():
            barrier.wait()
            results.append(session.samples_for(core))

        threads = [threading.Thread(target=sample) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(results) == 4
        assert all(r is results[0] for r in results)  # one shared SampleSet
        # exactly one oracle run: every miss beyond the first was converted
        # to a hit by the double-check (hits + misses == 4 + 1 - 1... the
        # invariant that matters: misses recorded, but only one sampling)
        assert session.stats.sample_hits + session.stats.sample_misses >= 4
        assert len(session._samples) == 1


class TestKeepaliveEviction:
    def test_fingerprint_caches_do_not_retain_dead_targets(self, c99):
        from repro.service.cache import _TARGET_FP_CACHE, target_fingerprint
        from repro.targets.target import _IMPL_CACHE

        custom = c99.extend("c99-transient", override_costs={"add.f64": 3.0})
        key = id(custom)
        target_fingerprint(custom)
        custom.impl_registry()
        assert key in _TARGET_FP_CACHE and key in _IMPL_CACHE
        del custom
        gc.collect()
        assert key not in _TARGET_FP_CACHE
        assert key not in _IMPL_CACHE

    def test_session_simulator_cache_evicts_with_target(self, c99):
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        custom = c99.extend("c99-transient-2", override_costs={"mul.f64": 9.0})
        key = id(custom)
        simulator = session.simulator(custom)
        assert key in session._simulators
        assert simulator.target is custom  # weak back-reference, still live
        del custom
        gc.collect()
        assert key not in session._simulators

    def test_registry_targets_stay_cached(self, c99):
        from repro.service.cache import _TARGET_FP_CACHE, target_fingerprint

        fingerprint = target_fingerprint(c99)
        gc.collect()
        assert _TARGET_FP_CACHE[id(c99)] == fingerprint


@pytest.fixture(scope="module")
def pool_server():
    session = ChassisSession(config=FAST, sample_config=SAMPLES, jobs=2)
    server = create_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    session.close()
    thread.join(timeout=10)


def _post(server, path, obj):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as response:
        return json.loads(response.read())


def _get(server, path):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=30
    ) as response:
        return json.loads(response.read())


class TestServePoolReuse:
    def test_consecutive_batch_requests_share_workers(self, pool_server):
        """Acceptance: serve --jobs 2 must not rebuild the pool per /batch
        request; /health exposes the worker PIDs to prove it."""
        first = _post(pool_server, "/batch",
                      {"cores": [SRC, SRC2], "targets": ["c99"]})
        health_1 = _get(pool_server, "/health")
        second = _post(pool_server, "/batch",
                       {"cores": [SRC, SRC2], "targets": ["arith"]})
        health_2 = _get(pool_server, "/health")
        assert first["summary"]["ok"] == 2 and second["summary"]["ok"] == 2
        pool_1, pool_2 = health_1["pool"], health_2["pool"]
        assert pool_1["generation"] == pool_2["generation"] == 1
        assert pool_1["pids"] == pool_2["pids"] and len(pool_1["pids"]) == 2

    def test_batch_summary_has_timeout_bucket(self, pool_server):
        payload = _post(pool_server, "/batch",
                        {"cores": [SRC2], "targets": ["fdlibm"]})
        assert set(payload["summary"]) == {"ok", "failed", "timeout", "cached"}
