"""Deeper hypothesis property tests on the core data structures.

These complement the per-module unit tests with randomized invariants: the
interval oracle's enclosure property across all unary operators, e-graph
congruence under random union sequences, and cost-model consistency between
typed extraction and static costing.
"""

import math

import mpmath
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from mpmath import mp, mpf

from repro.cost import TargetCostModel
from repro.egraph import EGraph, TypedExtractor, run_rules
from repro.ir import F64, parse_expr
from repro.rival.interval import INTERVAL_OPS, Interval
from repro.targets.synth import _MP_OPS

# --- interval enclosure across every unary operator ------------------------------

_UNARY_OPS = [
    name
    for name, fn in INTERVAL_OPS.items()
    if name in _MP_OPS and name not in ("+", "-", "*", "/", "pow", "atan2",
                                        "hypot", "fmin", "fmax", "copysign",
                                        "fmod")
]

_values = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@given(st.sampled_from(_UNARY_OPS), _values)
@settings(max_examples=200, deadline=None)
def test_unary_interval_encloses_true_value(op_name, x):
    """For every unary op: the interval at a point contains the true value."""
    mp.prec = 80
    interval = INTERVAL_OPS[op_name](Interval.point(x))
    if interval.err:
        return  # domain violations are allowed to flag instead of enclose
    try:
        with mp.workprec(120):
            true = _MP_OPS[op_name](mpf(x))
    except (ValueError, ZeroDivisionError, mpmath.libmp.ComplexResult):
        return
    if isinstance(true, mpmath.mpc) or mpmath.isnan(true):
        return
    assert interval.lo <= true <= interval.hi, (op_name, x)


@given(_values, _values)
@settings(max_examples=100, deadline=None)
def test_binary_interval_encloses(x, y):
    mp.prec = 80
    for op_name in ("+", "-", "*"):
        interval = INTERVAL_OPS[op_name](Interval.point(x), Interval.point(y))
        true = _MP_OPS[op_name](mpf(x), mpf(y))
        assert interval.err or interval.lo <= true <= interval.hi


# --- e-graph congruence under random unions ------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12))
@settings(max_examples=80, deadline=None)
def test_congruence_closure_random_unions(pairs):
    """After any union sequence + rebuild, congruence holds: equal children
    imply equal parents."""
    g = EGraph()
    leaves = [g.add_expr(parse_expr(f"v{i}")) for i in range(6)]
    parents = [g.add_expr(parse_expr(f"(sqrt v{i})")) for i in range(6)]
    for a, b in pairs:
        g.union(leaves[a], leaves[b])
    g.rebuild()
    for i in range(6):
        for j in range(6):
            if g.same(leaves[i], leaves[j]):
                assert g.same(parents[i], parents[j]), (i, j)


@given(st.lists(st.sampled_from(["(+ x y)", "(* x y)", "(+ y x)", "(sqrt x)",
                                 "(+ x 1)", "(* 2 x)"]), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_hashcons_no_duplicate_canonical_nodes(sources):
    """After inserts and a rebuild, no two classes contain the same
    canonical e-node."""
    g = EGraph()
    ids = [g.add_expr(parse_expr(src)) for src in sources]
    if len(ids) >= 2:
        g.union(ids[0], ids[-1])
    g.rebuild()
    seen = {}
    for eclass in g.classes():
        canonical_id = g.find(eclass.id)
        for node in eclass.nodes:
            canon = g.canonicalize(node)
            owner = seen.setdefault(canon, canonical_id)
            assert owner == canonical_id, f"node {canon} in two classes"


# --- typed extraction consistency ------------------------------------------------------


@pytest.mark.parametrize(
    "source",
    [
        "(- (sqrt (+ x 1)) (sqrt x))",
        "(/ 1 (+ 1 (exp (neg x))))",
        "(* x (+ x 1))",
        "(log (/ (+ 1 x) (- 1 x)))",
    ],
)
def test_typed_extraction_cost_matches_static_cost(source, c99):
    """The cost typed extraction reports equals the static program cost of
    the expression it extracts (the two views must agree, since extraction
    *is* the cost model's optimizer)."""
    from repro.core.isel import _rules_for
    from repro.egraph import RunnerLimits

    expr = parse_expr(source)
    g = EGraph()
    root = g.add_expr(expr)
    run_rules(g, _rules_for(c99), RunnerLimits(max_iterations=3, max_nodes=1200))
    model = TargetCostModel(c99)
    extractor = TypedExtractor(g, model, {"x": F64})
    reported = extractor.cost_of(root, F64)
    assert reported is not None
    extracted = extractor.extract(root, F64)
    assert model.program_cost(extracted) == pytest.approx(reported)
