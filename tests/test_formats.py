"""Number-format layer tests: ordinal codecs, registry, rounding.

The codec properties are parameterized over the *registry* — every format
registered now or later is covered automatically (satellite: property
tests for every registered format's ordinal codec).
"""

import math
import struct

import numpy as np
import pytest

from repro.accuracy.ulp import ulps_between
from repro.formats import (
    FloatFormat,
    UnknownFormatError,
    format_names,
    get_format,
    register_format,
    registered_formats,
)
from repro.formats.registry import _register_env_formats

ALL_FORMATS = registered_formats()
FORMAT_IDS = [fmt.name for fmt in ALL_FORMATS]


def _same_float(a: float, b: float) -> bool:
    """Bitwise float equality: NaN==NaN, and -0.0 != +0.0."""
    return struct.pack("<d", a) == struct.pack("<d", b)


def _probe_ordinals(fmt: FloatFormat) -> list[int]:
    """Ordinals spanning every regime: zeros, denormals, normals, extremes,
    infinities — positive and negative."""
    edges = {
        0,
        1,  # smallest positive denormal
        2,
        fmt.max_ordinal // 3,
        fmt.max_ordinal // 2,
        fmt.max_ordinal - 1,
        fmt.max_ordinal,  # largest finite
        fmt.max_ordinal + 1,  # +inf
        1 << (fmt.precision - 1),  # first normal boundary neighborhood
        (1 << (fmt.precision - 1)) - 1,  # largest denormal
    }
    # A deterministic spread across the whole range.
    step = max(1, (fmt.max_ordinal + 1) // 257)
    edges.update(range(0, fmt.max_ordinal + 1, step))
    return sorted({o for e in edges for o in (e, -e)})


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=FORMAT_IDS)
def test_ordinal_round_trip_identity(fmt):
    for ordinal in _probe_ordinals(fmt):
        value = fmt.from_ordinal(ordinal)
        assert fmt.to_ordinal(value) == ordinal, (
            f"{fmt.name}: ordinal {ordinal} -> {value!r} does not round-trip"
        )


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=FORMAT_IDS)
def test_value_round_trip_identity(fmt):
    for ordinal in _probe_ordinals(fmt):
        value = fmt.from_ordinal(ordinal)
        again = fmt.from_ordinal(fmt.to_ordinal(value))
        assert _same_float(value, again)


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=FORMAT_IDS)
def test_ordinal_order_preservation(fmt):
    """Strictly increasing ordinals map to strictly increasing values,
    across -inf, denormals, ±0, and +inf (the zeros collapse: ordinal 0 is
    +0.0 and there is no -0.0 ordinal — sign-magnitude maps -0.0 to 0)."""
    ordinals = _probe_ordinals(fmt)
    values = [fmt.from_ordinal(o) for o in ordinals]
    for (o1, v1), (o2, v2) in zip(
        zip(ordinals, values), zip(ordinals[1:], values[1:])
    ):
        assert v1 < v2, f"{fmt.name}: {o1}->{v1!r} not < {o2}->{v2!r}"


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=FORMAT_IDS)
def test_ordinal_boundary_values(fmt):
    assert fmt.from_ordinal(0) == 0.0
    assert fmt.from_ordinal(fmt.max_ordinal) == fmt.max_value
    assert fmt.from_ordinal(fmt.max_ordinal + 1) == math.inf
    assert fmt.from_ordinal(-(fmt.max_ordinal + 1)) == -math.inf
    assert fmt.from_ordinal(1) == fmt.min_subnormal
    # -0.0 canonicalizes onto ordinal 0 (sign-magnitude, |−0| bits are 0).
    assert fmt.to_ordinal(-0.0) == 0


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=FORMAT_IDS)
def test_ulps_between_symmetry_and_nan(fmt):
    samples = [fmt.from_ordinal(o) for o in _probe_ordinals(fmt)]
    probes = samples[:: max(1, len(samples) // 24)]
    for a in probes:
        for b in probes:
            assert ulps_between(a, b, fmt.name) == ulps_between(b, a, fmt.name)
    # NaN against any non-NaN is the worst case, 1 << bits; NaN vs NaN is 0.
    worst = 1 << fmt.bits
    assert ulps_between(math.nan, 1.0, fmt.name) == worst
    assert ulps_between(1.0, math.nan, fmt.name) == worst
    assert ulps_between(math.nan, math.nan, fmt.name) == 0
    # Adjacent ordinals are exactly one ulp apart.
    assert ulps_between(fmt.from_ordinal(3), fmt.from_ordinal(4), fmt.name) == 1


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=FORMAT_IDS)
def test_round_float_idempotent_and_clamping(fmt):
    for ordinal in _probe_ordinals(fmt):
        value = fmt.from_ordinal(ordinal)
        assert _same_float(fmt.round_float(value), value)
        assert _same_float(fmt.storage_clamp(value), value)
    # Rounding the midpoint beyond the largest finite value overflows.
    assert fmt.round_float(fmt.max_value * 1.001) in (fmt.max_value, math.inf)
    assert fmt.round_float(math.inf) == math.inf
    assert math.isnan(fmt.round_float(math.nan))


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=FORMAT_IDS)
def test_numpy_storage_cast_matches_scalar_clamp(fmt):
    values = np.array(
        [fmt.from_ordinal(o) for o in _probe_ordinals(fmt)]
        + [math.nan, 1.0 + 1e-9, -math.pi, 1e300, -1e300],
        dtype=np.float64,
    )
    cast = fmt.numpy_storage_cast(values)
    if cast is None:  # generic formats have no vectorized cast
        return
    for raw, vec in zip(values.tolist(), np.asarray(cast, dtype=np.float64).tolist()):
        assert _same_float(vec, fmt.storage_clamp(raw))


def test_known_format_geometry():
    fp16 = get_format("fp16")
    assert (fp16.bits, fp16.precision, fp16.emin, fp16.emax) == (16, 11, -14, 15)
    assert fp16.max_ordinal == 0x7BFF
    assert fp16.max_value == 65504.0
    bf16 = get_format("bf16")
    assert (bf16.bits, bf16.precision, bf16.emin, bf16.emax) == (16, 8, -126, 127)
    assert bf16.max_ordinal == 0x7F7F
    assert get_format("binary64").max_ordinal == 0x7FEFFFFFFFFFFFFF
    assert get_format("binary32").max_ordinal == 0x7F7FFFFF


def test_registry_aliases_resolve():
    assert get_format("f64") is get_format("binary64")
    assert get_format("double") is get_format("binary64")
    assert get_format("f32") is get_format("binary32")
    assert get_format("half") is get_format("fp16")
    assert get_format("binary16") is get_format("fp16")
    assert get_format("bfloat16") is get_format("bf16")
    fmt = get_format("fp16")
    assert get_format(fmt) is fmt  # passthrough


def test_unknown_format_error_lists_registered():
    with pytest.raises(UnknownFormatError) as err:
        get_format("binary128")
    message = str(err.value)
    assert "binary128" in message
    for name in format_names():
        assert name in message


def test_register_custom_format():
    custom = FloatFormat(
        name="test-tf32", bits=19, precision=11, emin=-126, emax=127,
        suffix="tf32t",
    )
    register_format(custom, replace=True)
    try:
        assert get_format("test-tf32") is custom
        assert custom in registered_formats()
        # The generic codec is live immediately: round-trip a few ordinals.
        for o in (0, 1, custom.max_ordinal, custom.max_ordinal + 1, -5):
            assert custom.to_ordinal(custom.from_ordinal(o)) == o
    finally:
        from repro.formats import registry

        with registry._LOCK:
            registry._FORMATS.pop("test-tf32", None)
            registry._NAMES.pop("test-tf32", None)


def test_env_format_registration():
    _register_env_formats("envfmt=20:13:-62:63")
    try:
        fmt = get_format("envfmt")
        assert (fmt.bits, fmt.precision, fmt.emin, fmt.emax) == (20, 13, -62, 63)
        assert fmt.to_ordinal(fmt.from_ordinal(fmt.max_ordinal)) == fmt.max_ordinal
    finally:
        from repro.formats import registry

        with registry._LOCK:
            registry._FORMATS.pop("envfmt", None)
            registry._NAMES.pop("envfmt", None)


def test_bf16_rounds_half_even():
    bf16 = get_format("bf16")
    # 1 + 2^-9 is exactly between 1 and 1+2^-7 (one bf16 ulp at 1): ties to even.
    assert bf16.round_float(1.0 + 2.0**-9) == 1.0
    assert bf16.round_float(1.0 + 3.0 * 2.0**-9) == 1.0 + 2.0**-7
    assert bf16.round_float(-0.0) == 0.0 and math.copysign(1, bf16.round_float(-0.0)) == -1.0


def test_fp16_overflow_threshold():
    fp16 = get_format("fp16")
    assert fp16.round_float(65519.0) == 65504.0  # below the rounding midpoint
    assert fp16.round_float(65520.0) == math.inf  # at the midpoint: overflows
