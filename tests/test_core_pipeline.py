"""Tests for isel, series, regimes, the loop, and full compilation."""

import math

import pytest

from repro.accuracy import SampleConfig, sample_core
from repro.core import (
    CompileConfig,
    compile_fpcore,
    infer_regimes,
    instruction_select,
    series_candidates,
    taylor_coeffs,
    transcribe,
)
from repro.core.candidates import Candidate
from repro.ir import F32, F64, expr_to_sexpr, parse_expr, parse_fpcore

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=15)
SMALL = SampleConfig(n_train=16, n_test=16)


class TestInstructionSelection:
    def test_rcp_variant_found(self, avx):
        prog = parse_expr("(div.f32 x y)", known_ops=set(avx.operators))
        variants = instruction_select(prog, avx, ty=F32)
        assert any("rcp.f32" in str(v) for v in variants)

    def test_fma_fusion_found(self, avx):
        prog = parse_expr(
            "(add.f64 (mul.f64 a b) c)", known_ops=set(avx.operators)
        )
        variants = instruction_select(prog, avx, ty=F64)
        assert any(v.op == "fma.f64" for v in variants)

    def test_log1pmd_found(self, fdlibm):
        prog = parse_expr("(* 1/2 (log (/ (+ 1 x) (- 1 x))))")
        variants = instruction_select(prog, fdlibm, ty=F64)
        assert any("log1pmd.f64" in str(v) for v in variants)

    def test_all_variants_well_typed(self, avx):
        from repro.cost import TargetCostModel

        prog = parse_expr("(div.f32 x y)", known_ops=set(avx.operators))
        model = TargetCostModel(avx)
        for variant in instruction_select(prog, avx, ty=F32):
            assert model.supports_program(variant)

    def test_accepts_real_input(self, c99):
        variants = instruction_select(parse_expr("(/ 1 x)"), c99, ty=F64)
        assert variants  # lowering real exprs directly also works


class TestSeries:
    def test_taylor_of_exp(self):
        coeffs = taylor_coeffs(parse_expr("(exp x)"), "x", 0.0, 3)
        assert coeffs is not None
        assert float(coeffs[0]) == pytest.approx(1.0)
        assert float(coeffs[1]) == pytest.approx(1.0)
        assert float(coeffs[2]) == pytest.approx(0.5)

    def test_singular_returns_none(self):
        assert taylor_coeffs(parse_expr("(/ 1 x)"), "x", 0.0, 3) is None

    def test_candidates_for_expm1_shape(self):
        out = series_candidates(parse_expr("(- (exp x) 1)"), degree=3)
        assert out
        # leading behaviour is x
        first = out[0]
        assert "x" in str(first)

    def test_multivariate_skipped(self):
        assert series_candidates(parse_expr("(+ x y)")) == []

    def test_infinity_expansion(self):
        # sqrt(x^2+1)-x ~ 1/(2x) at infinity
        out = series_candidates(parse_expr("(- (sqrt (+ (* x x) 1)) x)"), degree=2)
        assert any("/ 1 x" in expr_to_sexpr(e) for e in out)


class TestRegimes:
    def _mk(self, program_src, errors, target):
        return Candidate(
            program=parse_expr(program_src, known_ops=set(target.operators)),
            cost=5.0,
            error=sum(errors) / len(errors),
            point_errors=tuple(errors),
        )

    def test_split_found(self, c99):
        # candidate A perfect below 0, awful above; B the reverse
        points = [{"x": float(v)} for v in (-4, -3, -2, -1, 1, 2, 3, 4)]
        a = self._mk("(add.f64 x 1)", [0, 0, 0, 0, 50, 50, 50, 50], c99)
        b = self._mk("(sub.f64 x 1)", [50, 50, 50, 50, 0, 0, 0, 0], c99)
        branched = infer_regimes([a, b], points, ["x"])
        assert branched is not None
        assert branched.op == "if"

    def test_no_split_when_one_dominates(self, c99):
        points = [{"x": float(v)} for v in range(8)]
        a = self._mk("(add.f64 x 1)", [0.1] * 8, c99)
        b = self._mk("(sub.f64 x 1)", [30.0] * 8, c99)
        assert infer_regimes([a, b], points, ["x"]) is None

    def test_needs_enough_points(self, c99):
        points = [{"x": 1.0}]
        a = self._mk("(add.f64 x 1)", [0.0], c99)
        b = self._mk("(sub.f64 x 1)", [0.0], c99)
        assert infer_regimes([a, b], points, ["x"]) is None


class TestCompileFPCore:
    def test_sqrt_sub_improves(self, c99, sqrt_sub_core):
        result = compile_fpcore(sqrt_sub_core, c99, FAST, SMALL)
        assert len(result.frontier) >= 1
        best = result.frontier.best_error()
        assert best.error < result.input_candidate.error
        # and there's a cheaper-but-rougher option too (Pareto spread)
        assert result.frontier.best_cost().cost <= result.input_candidate.cost

    def test_frontier_is_pareto(self, c99, sqrt_sub_core):
        result = compile_fpcore(sqrt_sub_core, c99, FAST, SMALL)
        items = list(result.frontier)
        for a in items:
            for b in items:
                if a is not b:
                    assert not a.dominates(b)

    def test_sin_on_arith_via_polynomial(self, arith):
        """Targets without transcendentals get polynomial approximations
        (paper section 2: 'AVX code must use polynomial approximations')."""
        core = parse_fpcore("(FPCore (x) :pre (< -1 x 1) (sin x))")
        result = compile_fpcore(core, arith, FAST, SMALL)
        assert len(result.frontier) >= 1
        for candidate in result.frontier:
            assert "sin" not in str(candidate.program)

    def test_untranscribable_raises(self, arith):
        # Multivariate transcendental kernels cannot be series-approximated.
        core = parse_fpcore(
            "(FPCore (x y) :pre (and (< 0.1 x 10) (< 0.1 y 10)) (atan2 y x))"
        )
        from repro.core import Untranscribable

        with pytest.raises(Untranscribable):
            compile_fpcore(core, arith, FAST, SMALL)

    def test_avx_uses_fma(self, avx):
        core = parse_fpcore(
            "(FPCore (a b c) :pre (and (< 0.1 a 10) (< 0.1 b 10) (< 0.1 c 10))"
            " (+ (* a b) c))"
        )
        result = compile_fpcore(core, avx, FAST, SMALL)
        assert any("fma.f64" in str(c.program) for c in result.frontier)

    def test_binary32_core(self, avx):
        core = parse_fpcore(
            "(FPCore (x y) :precision binary32 :pre (and (< 0.1 x 10) (< 0.1 y 10))"
            " (/ x y))"
        )
        result = compile_fpcore(core, avx, FAST, SMALL)
        assert len(result.frontier) >= 1
        assert any("rcp.f32" in str(c.program) for c in result.frontier)

    def test_best_for_error(self, c99, sqrt_sub_core):
        result = compile_fpcore(sqrt_sub_core, c99, FAST, SMALL)
        loose = result.best_for_error(64.0)
        tight = result.best_for_error(1.0)
        assert loose is not None
        if tight is not None:
            assert tight.cost >= loose.cost
